//! # mcc-core — the paper's algorithms
//!
//! Reproduction of the two contributions of *“Data Caching in Next
//! Generation Mobile Cloud Services, Online vs. Off-line”* (Wang et al.,
//! ICPP 2017):
//!
//! * [`offline`] — the optimal O(mn) dynamic program for serving a known
//!   request sequence with minimum caching + transfer cost (Section IV),
//!   plus reference solvers and schedule reconstruction;
//! * [`online`] — the 3-competitive *Speculative Caching* algorithm
//!   (Section V), its Double-Transfer analysis transformation, the V-/H-
//!   reductions, and online baseline policies;
//! * [`hetero`] — the heterogeneous-cost extension (the paper's
//!   future-work direction), with honestly restricted guarantees.

#![forbid(unsafe_code)]
// `!(a > b)` is used deliberately where NaN must be rejected alongside
// ordinary failures; `a <= b` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod hetero;
pub mod offline;
pub mod online;
