//! Heavy soak tests — `#[ignore]`d by default; run with
//! `cargo test -p mcc-core --test soak -- --ignored` (a few minutes).
//!
//! Same invariants as the default suites at 10–50× the case counts and
//! larger instances: the deep net for regressions before a release.

use mcc_core::offline::{
    brute_force_cost, reconstruct, solve_fast_compact_with, solve_fast_with, solve_naive_with,
    solve_quadratic_with,
};
use mcc_core::online::{analyze, double_transfer, run_policy, SpeculativeCaching};
use mcc_model::{validate, CostModel, Fixed, Instance, Prescan, Request, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_fixed_instance(rng: &mut StdRng) -> Instance<Fixed> {
    let m = rng.gen_range(1..=5);
    let n = rng.gen_range(0..=12);
    let mut t_ms: i64 = 0;
    let requests: Vec<Request<Fixed>> = (0..n)
        .map(|_| {
            t_ms += rng.gen_range(1..=5000);
            Request::new(
                mcc_model::ServerId::from_index(rng.gen_range(0..m)),
                Fixed::from_micros(t_ms * 1000),
            )
        })
        .collect();
    let mu = Fixed::from_micros(rng.gen_range(1..=50) * 100_000);
    let lambda = Fixed::from_micros(rng.gen_range(1..=50) * 100_000);
    Instance::new(m, CostModel::new(mu, lambda).unwrap(), requests).unwrap()
}

fn random_f64_instance(rng: &mut StdRng, max_n: usize) -> Instance<f64> {
    let m = rng.gen_range(1..=12);
    let n = rng.gen_range(0..=max_n);
    let mut t = 0.0;
    let requests: Vec<Request<f64>> = (0..n)
        .map(|_| {
            t += rng.gen_range(0.001..4.0);
            Request::at(rng.gen_range(0..m), t)
        })
        .collect();
    let cost = CostModel::new(rng.gen_range(0.05..5.0), rng.gen_range(0.05..5.0)).unwrap();
    Instance::new(m, cost, requests).unwrap()
}

/// 20 000 exact differential cases against the exhaustive oracle.
#[test]
#[ignore = "soak: ~minutes"]
fn soak_dp_vs_oracle() {
    let mut rng = StdRng::seed_from_u64(0x50a4);
    for case in 0..20_000u32 {
        let inst = random_fixed_instance(&mut rng);
        let scan = Prescan::compute(&inst);
        let fast = solve_fast_with(&inst, &scan).optimal_cost();
        let oracle = brute_force_cost(&inst);
        assert_eq!(fast, oracle, "case {case}: {}", inst.to_compact());
        assert_eq!(
            solve_fast_compact_with(&inst, &scan).optimal_cost(),
            oracle,
            "case {case} compact"
        );
        assert_eq!(
            solve_naive_with(&inst, &scan).optimal_cost(),
            oracle,
            "case {case} naive"
        );
        assert_eq!(
            solve_quadratic_with(&inst, &scan).optimal_cost(),
            oracle,
            "case {case} quadratic"
        );
    }
}

/// 5 000 reconstruction round-trips at up to 400 requests.
#[test]
#[ignore = "soak: ~minutes"]
fn soak_reconstruction() {
    let mut rng = StdRng::seed_from_u64(0x5ec0);
    for case in 0..5_000u32 {
        let inst = random_f64_instance(&mut rng, 400);
        let scan = Prescan::compute(&inst);
        let sol = solve_fast_with(&inst, &scan);
        let sched = reconstruct(&inst, &scan, &sol);
        let v = mcc_model::validate_with(&inst, &sched, mcc_model::ValidateOptions { tol: 1e-9 })
            .unwrap_or_else(|e| panic!("case {case}: infeasible {e:?}"));
        assert!(
            v.total.approx_eq(sol.optimal_cost(), 1e-7),
            "case {case}: {} != {}",
            v.total,
            sol.optimal_cost()
        );
    }
}

/// 5 000 online runs: feasibility, DT equality, the full theorem chain.
#[test]
#[ignore = "soak: ~minutes"]
fn soak_online_chain() {
    let mut rng = StdRng::seed_from_u64(0x0111_u64);
    for case in 0..5_000u32 {
        let inst = random_f64_instance(&mut rng, 200);
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        validate(&inst, &run.schedule)
            .or_else(|_| {
                mcc_model::validate_with(
                    &inst,
                    &run.schedule,
                    mcc_model::ValidateOptions { tol: 1e-9 },
                )
            })
            .unwrap_or_else(|e| panic!("case {case}: SC infeasible {e:?}"));
        let dt = double_transfer(&run.record, inst.cost());
        assert!(
            dt.cost(inst.cost()).approx_eq(run.total_cost, 1e-9),
            "case {case}: DT != SC"
        );
        analyze(&inst, &run)
            .check_chain(1e-7)
            .unwrap_or_else(|e| panic!("case {case}: {e} on {}", inst.to_compact()));
    }
}
