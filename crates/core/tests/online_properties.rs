//! Theorem-shaped property tests for the online side.
//!
//! For random request sequences:
//! * Speculative Caching produces referee-feasible schedules;
//! * `Π(DT) = Π(SC)` (Definition 10 is cost-preserving);
//! * every inequality in the Theorem 3 chain holds in its corrected form
//!   (`Π(SC) ≤ 3·Π(OPT) + λ`; see `mcc_core::online::reduction` docs);
//! * Lemma 5 (single spanning cache across expensive gaps) and Lemma 6
//!   (`H(s_i, t_{p(i)}, t_i)` present for cheap server intervals) hold
//!   structurally for the reconstructed optimal schedule;
//! * the baselines are feasible and never beat the off-line optimum.

use mcc_core::offline::{optimal_schedule, reconstruct, solve_fast_with};
use mcc_core::online::{
    analyze, double_transfer, run_policy, Follow, KeepEverywhere, OnlineDecider,
    SpeculativeCaching, StayAtOrigin,
};
use mcc_model::{validate_with, Instance, Prescan, Request, Scalar, ValidateOptions};
use proptest::prelude::*;

fn random_instance() -> impl Strategy<Value = Instance<f64>> {
    (1usize..=6, 0usize..=60).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(0.01f64..4.0, n);
        let mu = 0.2f64..3.0;
        let lambda = 0.2f64..3.0;
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t = 0.0;
            let requests: Vec<Request<f64>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t += gap;
                    Request::new(mcc_model::ServerId::from_index(s), t)
                })
                .collect();
            Instance::new(m, mcc_model::CostModel::new(mu, lambda).unwrap(), requests).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SC is feasible and DT preserves its cost — for the single-epoch
    /// algorithm *and* all epoch variants. The Theorem 3 chain is checked
    /// for the single-epoch run only: epoch resets void the guarantee
    /// against the global optimum (the constructive counterexample lives
    /// in `mcc_core::online::reduction::tests`).
    #[test]
    fn sc_chain_holds(inst in random_instance(), epoch in prop_oneof![
        Just(None), Just(Some(1usize)), Just(Some(3usize)), Just(Some(10usize))
    ]) {
        let mut sc = match epoch {
            None => SpeculativeCaching::paper(),
            Some(n) => SpeculativeCaching::with_epochs(n),
        };
        let run = run_policy(&mut sc, &inst);
        validate_with(&inst, &run.schedule, ValidateOptions { tol: 1e-9 })
            .map_err(|e| TestCaseError::fail(format!("SC infeasible: {e:?} on {}", inst.to_compact())))?;

        let dt = double_transfer(&run.record, inst.cost());
        prop_assert!(
            dt.cost(inst.cost()).approx_eq(run.total_cost, 1e-9),
            "Π(DT) = {} != Π(SC) = {} on {}", dt.cost(inst.cost()), run.total_cost, inst.to_compact()
        );
        // Every DT edge weight ≤ 2λ (α = 1).
        prop_assert!(dt.max_transfer_weight(inst.cost()) <= 2.0 * inst.cost().lambda + 1e-9);

        if epoch.is_none() {
            let report = analyze(&inst, &run);
            report.check_chain(1e-7)
                .map_err(|e| TestCaseError::fail(format!("{e} on {}", inst.to_compact())))?;
        }
    }

    /// Lemma 6: for every request with μσ_i < λ, the reconstructed optimal
    /// schedule contains the cache H(s_i, t_{p(i)}, t_i).
    #[test]
    fn lemma6_short_intervals_are_cached_in_opt(inst in random_instance()) {
        let scan = Prescan::compute(&inst);
        let sol = solve_fast_with(&inst, &scan);
        let sched = reconstruct(&inst, &scan, &sol);
        for i in 1..=inst.n() {
            if let (Some(p_i), Some(sigma)) = (scan.p[i], scan.sigma[i]) {
                if inst.cost().caching(sigma) < inst.cost().lambda {
                    let (from, to) = (inst.t(p_i), inst.t(i));
                    let covered = sched.caches.iter().any(|h| {
                        h.server == inst.server(i)
                            && h.from <= from + 1e-12
                            && h.to + 1e-12 >= to
                    });
                    prop_assert!(
                        covered,
                        "Lemma 6 fails at r_{i} on {}", inst.to_compact()
                    );
                }
            }
        }
    }

    /// Lemma 5: across every gap with μδt > λ, the reconstructed optimal
    /// schedule keeps exactly one live copy.
    #[test]
    fn lemma5_single_copy_across_expensive_gaps(inst in random_instance()) {
        let (sched, _) = optimal_schedule(&inst);
        for i in 1..=inst.n() {
            let gap = inst.delta_t(i - 1, i);
            if inst.cost().caching(gap) > inst.cost().lambda {
                let mid = inst.t(i - 1) + gap / 2.0;
                prop_assert_eq!(
                    sched.copies_at(mid),
                    1,
                    "Lemma 5 fails in gap before r_{} on {}", i, inst.to_compact()
                );
            }
        }
    }

    /// Baselines are feasible and OPT really is a lower bound for all
    /// online policies (including SC).
    #[test]
    fn no_online_policy_beats_opt(inst in random_instance()) {
        let opt = mcc_core::offline::optimal_cost(&inst);
        let policies: Vec<Box<dyn OnlineDecider<f64>>> = vec![
            Box::new(SpeculativeCaching::paper()),
            Box::new(SpeculativeCaching::with_options(0.5, None)),
            Box::new(SpeculativeCaching::with_options(2.0, Some(4))),
            Box::new(Follow::new()),
            Box::new(StayAtOrigin::new()),
            Box::new(KeepEverywhere::new()),
        ];
        for mut p in policies {
            let run = run_policy(p.as_mut(), &inst);
            validate_with(&inst, &run.schedule, ValidateOptions { tol: 1e-9 })
                .map_err(|e| TestCaseError::fail(format!(
                    "{} infeasible: {e:?} on {}", run.policy, inst.to_compact()
                )))?;
            prop_assert!(
                run.total_cost >= opt - 1e-7,
                "{} undercuts OPT ({} < {}) on {}", run.policy, run.total_cost, opt, inst.to_compact()
            );
        }
    }
}
