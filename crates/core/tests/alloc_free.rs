//! Asserts the `SolverWorkspace` zero-allocation guarantee: once a
//! workspace is warm at a shape, `solve_fast_in` / `solve_fast_compact_in`
//! perform **zero** heap allocations per solve.
//!
//! This file must remain the SOLE test in its integration-test binary: the
//! counting `#[global_allocator]` observes the whole process, and the test
//! harness runs tests in one process (concurrently, by default) — any
//! sibling test's allocations would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mcc_core::offline::{
    solve_batch_in, solve_fast_compact_in, solve_fast_in, BatchWorkspace, SolverWorkspace,
};
use mcc_model::{CostModel, Instance, Request, ServerId};

/// Counts allocation *events* (alloc/realloc/alloc_zeroed) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic instance without pulling in the workload generators.
fn instance(n: usize, m: usize) -> Instance<f64> {
    let mut t = 0.0;
    let requests: Vec<Request<f64>> = (0..n)
        .map(|i| {
            t += 0.05 + (i * 7 % 13) as f64 * 0.01;
            Request::new(ServerId::from_index(i * 31 % m), t)
        })
        .collect();
    let cost = CostModel::new(1.0, 1.0).expect("positive rates");
    Instance::new(m, cost, requests).expect("valid instance")
}

#[test]
fn warm_workspace_solves_allocate_nothing() {
    let big = instance(2_000, 24);
    let small = instance(300, 8);
    let mut ws = SolverWorkspace::new();

    // Warm-up at the largest shape (grows every buffer), plus one compact
    // solve so its paths are warm too.
    let expect = solve_fast_in(&big, &mut ws).optimal_cost();
    let _ = solve_fast_compact_in(&big, &mut ws);

    // Warm the batched kernel at its largest staging (the sweep's chunk
    // width is 8; warm one wider to cover ragged final chunks).
    let batch_insts = [&big, &small, &big, &small, &big, &small, &big, &small, &big];
    let mut bws = BatchWorkspace::new();
    solve_batch_in(&batch_insts, &mut bws);
    let batch_expect = bws.optimal_cost(0);

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        let got = solve_fast_in(&big, &mut ws).optimal_cost();
        assert_eq!(got, expect);
        // Shape changes within the warmed envelope must stay free too.
        let _ = solve_fast_in(&small, &mut ws);
        let _ = solve_fast_compact_in(&small, &mut ws);
        let _ = solve_fast_compact_in(&big, &mut ws);
        // The warm batched kernel: full restage + solve, zero allocations.
        solve_batch_in(&batch_insts, &mut bws);
        assert_eq!(bws.optimal_cost(0), batch_expect);
        // Smaller batches over the dirty buffers stay free as well.
        solve_batch_in(&[&small, &big], &mut bws);
    }
    ARMED.store(false, Ordering::SeqCst);

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state workspace solves must not touch the heap ({events} allocation events)"
    );
}
