//! Differential testing of the off-line solvers.
//!
//! The fast O(mn) DP, the space-lean variant, the naive sweep and the
//! exhaustive oracle must agree *exactly* — we run them over the [`Fixed`]
//! scalar with all inputs on a millisecond grid, so every `μ·duration`
//! product is exact and `==` is sound (see `mcc_model::scalar` docs).
//! Reconstruction must produce a schedule the independent referee accepts
//! at exactly the DP's claimed cost.

use mcc_core::offline::{
    brute_force_cost, reconstruct, solve_auto_in, solve_batch_in, solve_fast,
    solve_fast_compact_in, solve_fast_compact_with, solve_fast_in, solve_fast_with, solve_naive,
    solve_naive_with, solve_quadratic_with, BatchWorkspace, SolverWorkspace,
};
use mcc_model::{validate, CostModel, Fixed, Instance, Prescan, Request, Scalar};
use proptest::prelude::*;

/// Strategy: a random instance on a millisecond grid.
///
/// `servers ∈ 1..=4`, `n ∈ 0..=10`, times strictly increasing in steps of
/// 1..=4000 ms, `μ, λ ∈ {0.25, 0.5, 1, 2, 4} scaled by 0.001..` — all
/// representable exactly in micro-units with exact products.
fn small_instance() -> impl Strategy<Value = Instance<Fixed>> {
    (1usize..=4, 0usize..=10).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(1u32..=4000, n);
        let mu = prop_oneof![Just(250), Just(500), Just(1000), Just(2000), Just(4000)];
        let lambda = prop_oneof![Just(250), Just(500), Just(1000), Just(3000), Just(8000)];
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t_ms: i64 = 0;
            let requests: Vec<Request<Fixed>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t_ms += gap as i64;
                    Request::new(
                        mcc_model::ServerId::from_index(s),
                        Fixed::from_micros(t_ms * 1000),
                    )
                })
                .collect();
            let cost = CostModel::new(
                Fixed::from_micros(mu * 1000),
                Fixed::from_micros(lambda * 1000),
            )
            .expect("positive rates");
            Instance::new(m, cost, requests).expect("construction is valid")
        })
    })
}

/// A larger instance (f64) for fast-vs-naive agreement at scale.
fn medium_instance() -> impl Strategy<Value = Instance<f64>> {
    (1usize..=8, 0usize..=120).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(0.001f64..5.0, n);
        let mu = 0.1f64..4.0;
        let lambda = 0.1f64..4.0;
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t = 0.0;
            let requests: Vec<Request<f64>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t += gap;
                    Request::new(mcc_model::ServerId::from_index(s), t)
                })
                .collect();
            let cost = CostModel::new(mu, lambda).unwrap();
            Instance::new(m, cost, requests).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The recurrence solvers and the exhaustive oracle agree bit-exactly.
    #[test]
    fn dp_matches_brute_force_exactly(inst in small_instance()) {
        let scan = Prescan::compute(&inst);
        let fast = solve_fast_with(&inst, &scan);
        let compact = solve_fast_compact_with(&inst, &scan);
        let naive = solve_naive_with(&inst, &scan);
        let quadratic = solve_quadratic_with(&inst, &scan);
        let oracle = brute_force_cost(&inst);
        prop_assert_eq!(fast.optimal_cost(), oracle, "fast vs oracle on {}", inst.to_compact());
        prop_assert_eq!(compact.optimal_cost(), oracle, "compact vs oracle");
        prop_assert_eq!(naive.optimal_cost(), oracle, "naive vs oracle");
        prop_assert_eq!(quadratic.optimal_cost(), oracle, "quadratic vs oracle");
        // Full tables agree, not just the end value.
        for i in 0..=inst.n() {
            prop_assert_eq!(fast.c[i], naive.c[i]);
            prop_assert_eq!(fast.d[i], naive.d[i]);
            prop_assert_eq!(compact.c[i], naive.c[i]);
            prop_assert_eq!(quadratic.c[i], naive.c[i]);
        }
    }

    /// Reconstruction materializes a schedule the referee accepts at
    /// exactly C(n) — i.e. the DP's optimum is *achievable*, not just a
    /// number.
    #[test]
    fn reconstruction_is_feasible_and_exactly_optimal(inst in small_instance()) {
        let scan = Prescan::compute(&inst);
        let sol = solve_fast_with(&inst, &scan);
        let sched = reconstruct(&inst, &scan, &sol);
        let validated = validate(&inst, &sched)
            .map_err(|e| TestCaseError::fail(format!("infeasible: {e:?} on {}", inst.to_compact())))?;
        prop_assert_eq!(
            validated.total,
            sol.optimal_cost(),
            "reconstructed cost differs on {}",
            inst.to_compact()
        );
    }

    /// A dirty reused workspace changes no bit of the output: both `_in`
    /// solvers after solving an unrelated instance produce exactly the
    /// tables — values *and* provenance — of a fresh allocating solve, and
    /// exactly the naive sweep's values. (Provenance is only compared
    /// against `solve_fast`/`solve_fast_compact`, which enumerate pivots in
    /// the same order; the sweep may break cost ties differently.)
    #[test]
    fn workspace_reuse_is_bit_exact(dirty in small_instance(), inst in small_instance()) {
        let mut ws = SolverWorkspace::new();
        let _ = solve_fast_in(&dirty, &mut ws);
        let _ = solve_fast_compact_in(&dirty, &mut ws);
        let fresh = solve_fast(&inst);
        let naive = solve_naive(&inst);
        let sol = solve_fast_in(&inst, &mut ws);
        prop_assert_eq!(&sol.c, &fresh.c, "C on {}", inst.to_compact());
        prop_assert_eq!(&sol.d, &fresh.d);
        prop_assert_eq!(&sol.c_from, &fresh.c_from);
        prop_assert_eq!(&sol.d_from, &fresh.d_from);
        prop_assert_eq!(&sol.c, &naive.c);
        prop_assert_eq!(&sol.d, &naive.d);
        let sol = solve_fast_compact_in(&inst, &mut ws);
        prop_assert_eq!(&sol.c, &fresh.c);
        prop_assert_eq!(&sol.d, &fresh.d);
        prop_assert_eq!(&sol.c_from, &fresh.c_from);
        prop_assert_eq!(&sol.d_from, &fresh.d_from);
    }

    /// The running bound B_n is a true lower bound and C is monotone.
    #[test]
    fn structural_invariants(inst in small_instance()) {
        let scan = Prescan::compute(&inst);
        let sol = solve_fast_with(&inst, &scan);
        prop_assert!(scan.total_lower_bound() <= sol.optimal_cost());
        for i in 1..=inst.n() {
            prop_assert!(sol.c[i] >= sol.c[i-1], "C must be nondecreasing");
            prop_assert!(sol.d[i] >= sol.c[i], "C(i) ≤ D(i) by definition");
        }
    }

    /// The batched kernel over K random instances is bit-identical to K
    /// independent per-instance solves ([`Fixed`], exact `==` on the full
    /// `C`/`D` lanes) — staged through a *dirty* workspace, so lane
    /// boundaries and leftover state from a previous batch can't leak.
    #[test]
    fn batch_matches_per_instance_solves_exactly(
        dirty in (0usize..=3).prop_flat_map(|k| proptest::collection::vec(small_instance(), k)),
        insts in (0usize..=5).prop_flat_map(|k| proptest::collection::vec(small_instance(), k)),
    ) {
        let mut bws = BatchWorkspace::new();
        let dirty_views: Vec<&Instance<Fixed>> = dirty.iter().collect();
        solve_batch_in(&dirty_views, &mut bws);
        let views: Vec<&Instance<Fixed>> = insts.iter().collect();
        solve_batch_in(&views, &mut bws);
        prop_assert_eq!(bws.len(), insts.len());
        let mut ws = SolverWorkspace::new();
        for (k, inst) in insts.iter().enumerate() {
            let scalar = solve_fast_in(inst, &mut ws);
            prop_assert_eq!(bws.c(k), &scalar.c[..], "C lane {} on {}", k, inst.to_compact());
            prop_assert_eq!(bws.d(k), &scalar.d[..], "D lane {} on {}", k, inst.to_compact());
            prop_assert_eq!(bws.optimal_cost(k), scalar.optimal_cost());
        }
    }

    /// The same bit-identity holds for `f64` at scale (`to_bits`
    /// comparison, no tolerance): the batched lanes reproduce the windowed
    /// sweep's and the auto dispatch's tables bit for bit, so swapping the
    /// sweep pipeline onto the batched kernel can never change a result.
    #[test]
    fn batch_is_bit_identical_to_auto_at_scale(
        insts in (1usize..=4).prop_flat_map(|k| proptest::collection::vec(medium_instance(), k)),
    ) {
        let views: Vec<&Instance<f64>> = insts.iter().collect();
        let mut bws = BatchWorkspace::new();
        solve_batch_in(&views, &mut bws);
        let mut ws = SolverWorkspace::new();
        for (k, inst) in insts.iter().enumerate() {
            let scalar = solve_auto_in(inst, &mut ws);
            for i in 0..=inst.n() {
                prop_assert_eq!(
                    bws.c(k)[i].to_bits(),
                    scalar.c[i].to_bits(),
                    "C({}) lane {}", i, k
                );
                prop_assert_eq!(
                    bws.d(k)[i].to_bits(),
                    scalar.d[i].to_bits(),
                    "D({}) lane {}", i, k
                );
            }
        }
    }

    /// At scale (f64): both fast variants agree with the naive sweep to
    /// floating-point tolerance, and reconstruction stays feasible.
    #[test]
    fn fast_equals_naive_at_scale(inst in medium_instance()) {
        let scan = Prescan::compute(&inst);
        let fast = solve_fast_with(&inst, &scan);
        let compact = solve_fast_compact_with(&inst, &scan);
        let naive = solve_naive_with(&inst, &scan);
        prop_assert!(fast.optimal_cost().approx_eq(naive.optimal_cost(), 1e-9));
        prop_assert!(compact.optimal_cost().approx_eq(naive.optimal_cost(), 1e-9));
        let sched = reconstruct(&inst, &scan, &fast);
        let validated = mcc_model::validate_with(
            &inst,
            &sched,
            mcc_model::ValidateOptions { tol: 1e-9 },
        )
        .map_err(|e| TestCaseError::fail(format!("infeasible: {e:?}")))?;
        prop_assert!(validated.total.approx_eq(fast.optimal_cost(), 1e-7));
    }
}

/// The batched kernel on every degenerate shape at once: an empty batch,
/// then a mixed batch of n = 0, n = 1, m = 1 and a normal lane — each lane
/// bit-identical to its per-instance solve, including across the reuse.
#[test]
fn batch_handles_degenerate_shapes_exactly() {
    let empty_n = Instance::<f64>::from_compact("m=3 mu=1 lambda=1 |").unwrap();
    let one_req = Instance::<f64>::from_compact("m=2 mu=2 lambda=0.5 | s2@1.5").unwrap();
    let one_server =
        Instance::<f64>::from_compact("m=1 mu=1 lambda=1 | s1@0.5 s1@1.0 s1@3.5").unwrap();
    let normal =
        Instance::<f64>::from_compact("m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4 s2@2.6")
            .unwrap();

    let mut bws = BatchWorkspace::new();
    // An empty batch is legal and leaves nothing behind.
    solve_batch_in(&[], &mut bws);
    assert_eq!(bws.len(), 0);
    assert!(bws.is_empty());

    let insts = [&empty_n, &one_req, &one_server, &normal];
    solve_batch_in(&insts, &mut bws);
    let mut ws = SolverWorkspace::new();
    for (k, inst) in insts.iter().enumerate() {
        let scalar = solve_fast_in(inst, &mut ws);
        assert_eq!(bws.c(k), &scalar.c[..], "C lane {k}");
        assert_eq!(bws.n_of(k), inst.n(), "lane length {k}");
        for i in 0..=inst.n() {
            let (bd, sd) = (bws.d(k)[i], scalar.d[i]);
            assert!(
                bd.to_bits() == sd.to_bits(),
                "D({i}) lane {k}: {bd} vs {sd}"
            );
        }
    }
    // n = 0 solves to zero cost; a lone request must be cached (μσ + B).
    assert_eq!(bws.optimal_cost(0), 0.0);
    assert_eq!(bws.optimal_cost(1), solve_naive(&one_req).optimal_cost());
}
