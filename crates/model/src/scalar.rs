//! Numeric scalar abstraction for times and costs.
//!
//! The paper's quantities (request times, the caching rate `μ`, the transfer
//! charge `λ`, schedule costs) are all non-negative reals. Algorithms in this
//! workspace are generic over [`Scalar`] so they can run in two modes:
//!
//! * [`f64`] — fast, what benchmarks and examples use;
//! * [`Fixed`] — exact 64-bit fixed-point (micro-units). Property tests use
//!   this mode so that the dynamic program, the naive sweep and the
//!   exhaustive reference solver can be compared with `==` instead of a
//!   floating-point tolerance.
//!
//! # Infinity convention
//!
//! Dynamic-programming tables use `Scalar::INFINITY` for "not yet feasible"
//! entries (`D(i) = +∞` for the first request on a server). Implementations
//! must make `add` saturate at infinity and keep comparisons total for the
//! values produced by the algorithms (no NaN: `mul` is never called with an
//! infinite operand — callers guard with [`Scalar::is_finite`]).
//!
//! # Exactness contract
//!
//! When multiplying a rate by a duration, always compute the duration first
//! and multiply once (`mu * (b - a)`), never `mu * b - mu * a`. Under
//! [`Fixed`] each multiplication truncates toward zero, so algebraically
//! equal expressions are only guaranteed to agree when they perform the same
//! multiplications. All solvers in `mcc-core` follow this convention, which
//! is what makes exact equality testing across solvers sound.

use std::fmt::{Debug, Display};
use std::ops::{Add, Sub};

/// A non-negative time/cost scalar. See the module docs for the contract.
pub trait Scalar:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Saturating upper bound used for infeasible DP entries.
    const INFINITY: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(x: f64) -> Self;

    /// Converts to `f64` (lossless for `f64`, exact up to 1e-6 for [`Fixed`]).
    fn to_f64(self) -> f64;

    /// Product of two finite scalars (rate × duration).
    ///
    /// Callers must ensure both operands are finite; implementations may
    /// saturate or panic otherwise (debug builds of [`Fixed`] panic).
    fn mul(self, other: Self) -> Self;

    /// Quotient of two finite scalars; used for `Δt = λ/μ` and ratios.
    fn div(self, other: Self) -> Self;

    /// `true` when the value is neither the infinity sentinel nor a float
    /// infinity/NaN.
    fn is_finite(self) -> bool;

    /// Total-order minimum (callers never pass NaN).
    #[inline]
    fn min2(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Total-order maximum (callers never pass NaN).
    #[inline]
    fn max2(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximate equality with an absolute-or-relative tolerance; exact
    /// types may ignore `tol`.
    fn approx_eq(self, other: Self, tol: f64) -> bool;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const INFINITY: Self = f64::INFINITY;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn mul(self, other: Self) -> Self {
        self * other
    }

    #[inline]
    fn div(self, other: Self) -> Self {
        self / other
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        if self == other {
            return true; // covers both infinite
        }
        let diff = (self - other).abs();
        let scale = self.abs().max(other.abs()).max(1.0);
        diff <= tol * scale
    }
}

/// Number of fixed-point fractional units per 1.0 (micro-units).
pub const FIXED_SCALE: i64 = 1_000_000;

/// Exact fixed-point scalar: an `i64` count of micro-units.
///
/// Arithmetic saturates at [`Fixed::INFINITY`] so DP sentinel values behave
/// like IEEE infinities under addition and comparison. Multiplication and
/// division run through `i128` intermediates and truncate toward zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fixed(pub i64);

impl Fixed {
    /// The raw sentinel for +∞.
    const INF_RAW: i64 = i64::MAX;

    /// Builds a `Fixed` from a raw count of micro-units.
    #[inline]
    pub const fn from_micros(raw: i64) -> Self {
        Fixed(raw)
    }

    /// Raw count of micro-units.
    #[inline]
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Builds a `Fixed` from an integer number of whole units.
    #[inline]
    pub const fn from_int(v: i64) -> Self {
        Fixed(v * FIXED_SCALE)
    }
}

impl Debug for Fixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == Self::INF_RAW {
            write!(f, "Fixed(inf)")
        } else {
            write!(f, "Fixed({})", self.to_f64())
        }
    }
}

impl Display for Fixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == Self::INF_RAW {
            write!(f, "inf")
        } else {
            write!(f, "{}", self.to_f64())
        }
    }
}

impl Add for Fixed {
    type Output = Fixed;

    #[inline]
    fn add(self, rhs: Fixed) -> Fixed {
        if self.0 == Self::INF_RAW || rhs.0 == Self::INF_RAW {
            return Fixed(Self::INF_RAW);
        }
        Fixed(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Fixed {
    type Output = Fixed;

    #[inline]
    fn sub(self, rhs: Fixed) -> Fixed {
        if self.0 == Self::INF_RAW {
            debug_assert!(rhs.0 != Self::INF_RAW, "inf - inf is undefined");
            return Fixed(Self::INF_RAW);
        }
        debug_assert!(rhs.0 != Self::INF_RAW, "finite - inf is undefined");
        Fixed(self.0 - rhs.0)
    }
}

impl Scalar for Fixed {
    const ZERO: Self = Fixed(0);
    const INFINITY: Self = Fixed(Self::INF_RAW);

    #[inline]
    fn from_f64(x: f64) -> Self {
        if x.is_infinite() && x > 0.0 {
            return Self::INFINITY;
        }
        Fixed((x * FIXED_SCALE as f64).round() as i64)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        if self.0 == Self::INF_RAW {
            f64::INFINITY
        } else {
            self.0 as f64 / FIXED_SCALE as f64
        }
    }

    #[inline]
    fn mul(self, other: Self) -> Self {
        debug_assert!(self.is_finite() && other.is_finite(), "mul with infinity");
        let wide = self.0 as i128 * other.0 as i128 / FIXED_SCALE as i128;
        debug_assert!(wide < Self::INF_RAW as i128, "fixed-point mul overflow");
        Fixed(wide as i64)
    }

    #[inline]
    fn div(self, other: Self) -> Self {
        debug_assert!(self.is_finite() && other.is_finite(), "div with infinity");
        debug_assert!(other.0 != 0, "fixed-point divide by zero");
        let wide = self.0 as i128 * FIXED_SCALE as i128 / other.0 as i128;
        Fixed(wide as i64)
    }

    #[inline]
    fn is_finite(self) -> bool {
        self.0 != Self::INF_RAW
    }

    #[inline]
    fn approx_eq(self, other: Self, _tol: f64) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_and_ops() {
        let a = <f64 as Scalar>::from_f64(1.5);
        let b = <f64 as Scalar>::from_f64(0.25);
        assert_eq!(a.mul(b), 0.375);
        assert_eq!(a.div(b), 6.0);
        assert!(a.is_finite());
        assert!(!f64::INFINITY.is_finite());
        assert_eq!(a.min2(b), b);
        assert_eq!(a.max2(b), a);
    }

    #[test]
    fn f64_approx_eq_scales() {
        assert!(1.0e9.approx_eq(1.0e9 + 1.0, 1e-6));
        assert!(!1.0.approx_eq(1.001, 1e-6));
        assert!(f64::INFINITY.approx_eq(f64::INFINITY, 1e-9));
    }

    #[test]
    fn fixed_roundtrip() {
        let x = Fixed::from_f64(1.25);
        assert_eq!(x.micros(), 1_250_000);
        assert_eq!(x.to_f64(), 1.25);
        assert_eq!(Fixed::from_int(3), Fixed::from_f64(3.0));
    }

    #[test]
    fn fixed_mul_div_exact() {
        let mu = Fixed::from_f64(2.0);
        let dt = Fixed::from_f64(0.5);
        assert_eq!(mu.mul(dt), Fixed::from_f64(1.0));
        assert_eq!(
            Fixed::from_f64(3.0).div(Fixed::from_f64(2.0)),
            Fixed::from_f64(1.5)
        );
    }

    #[test]
    fn fixed_infinity_saturates() {
        let inf = Fixed::INFINITY;
        let one = Fixed::from_int(1);
        assert_eq!(inf + one, inf);
        assert_eq!(one + inf, inf);
        assert!(!inf.is_finite());
        assert!(one < inf);
        assert_eq!(inf.min2(one), one);
        assert_eq!(Fixed::from_f64(f64::INFINITY), inf);
        assert_eq!(inf.to_f64(), f64::INFINITY);
    }

    #[test]
    fn fixed_sub_is_exact() {
        let a = Fixed::from_f64(5.6);
        let b = Fixed::from_f64(2.0);
        assert_eq!(a - b, Fixed::from_f64(3.6));
    }

    #[test]
    fn fixed_ordering_is_total() {
        let mut v = vec![
            Fixed::from_int(3),
            Fixed::ZERO,
            Fixed::INFINITY,
            Fixed::from_f64(0.5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Fixed::ZERO,
                Fixed::from_f64(0.5),
                Fixed::from_int(3),
                Fixed::INFINITY
            ]
        );
    }

    #[test]
    fn fixed_display() {
        assert_eq!(format!("{}", Fixed::from_f64(2.5)), "2.5");
        assert_eq!(format!("{}", Fixed::INFINITY), "inf");
        assert_eq!(format!("{:?}", Fixed::INFINITY), "Fixed(inf)");
    }

    #[test]
    fn fixed_json_roundtrip() {
        use crate::json::{Json, JsonScalar};
        let x = Fixed::from_f64(4.25);
        let j = x.to_json();
        // Transparent micro-unit form, matching the archived wire shape.
        assert_eq!(j.to_string_compact(), "4250000");
        let y = Fixed::from_json(&Json::parse("4250000").unwrap()).unwrap();
        assert_eq!(x, y);
    }
}
