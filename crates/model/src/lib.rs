//! # mcc-model — problem model for cost-driven mobile-cloud data caching
//!
//! This crate is the shared substrate of the `mobile-cloud-cache` workspace,
//! a reproduction of *“Data Caching in Next Generation Mobile Cloud
//! Services, Online vs. Off-line”* (Wang et al., ICPP 2017). It defines:
//!
//! * [`Scalar`] — generic time/cost numerics ([`f64`] for speed, [`Fixed`]
//!   for exact cross-solver equality testing);
//! * [`Instance`] — the validated problem input: `m` fully connected
//!   servers, a homogeneous [`CostModel`] `(μ, λ)`, and a strictly
//!   time-ordered request sequence with the paper's `r_0 = (s^1, 0)`
//!   boundary convention;
//! * [`Prescan`] — the shared `p(i)/σ_i/b_i/B_i` pre-computation
//!   (Definitions 4–5);
//! * [`Schedule`] — cache intervals `H(s, x, y)` plus transfers
//!   `Tr(src, dst, t)`, with cost evaluation `Π(Ψ)`;
//! * [`validate()`] — an independent referee that re-checks feasibility and
//!   re-derives cost for any schedule, so solvers cannot self-certify;
//! * [`SpaceTimeGraph`] — the analysis graph of Definition 2.
//!
//! Solvers live in `mcc-core`; workload generators in `mcc-workloads`; the
//! discrete-event execution substrate in `mcc-simnet`.

#![forbid(unsafe_code)]
// `!(a > b)` is used deliberately where NaN must be rejected alongside
// ordinary failures; `a <= b` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod builder;
pub mod cost;
pub mod error;
pub mod ids;
pub mod instance;
pub mod json;
pub mod prescan;
pub mod request;
pub mod scalar;
pub mod schedule;
pub mod spacetime;
pub mod standard_form;
pub mod validate;

pub use builder::{unit_instance, InstanceBuilder};
pub use cost::CostModel;
pub use error::{ModelError, Violation};
pub use ids::ServerId;
pub use instance::{Instance, InstanceBuf};
pub use json::{Json, JsonScalar};
pub use prescan::{Prescan, PrescanBatch, ServerLists};
pub use request::Request;
pub use scalar::{Fixed, Scalar, FIXED_SCALE};
pub use schedule::{CacheInterval, Schedule, Transfer};
pub use spacetime::{Edge, EdgeKind, SpaceTimeGraph, Vertex};
pub use standard_form::{
    is_standard_form, standard_form_defects, sub_schedule, truncate_instance, NonStandard,
};
pub use validate::{validate, validate_with, ValidateOptions, ValidatedCost};
