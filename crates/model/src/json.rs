//! Minimal self-contained JSON for instance persistence.
//!
//! The build environment has no crates.io access, so instead of `serde`
//! this module provides a small [`Json`] value type with a strict parser
//! and compact/pretty writers. The wire shapes match what the previous
//! serde derives produced, so traces archived by earlier builds keep
//! loading:
//!
//! ```json
//! {
//!   "servers": 4,
//!   "cost": { "mu": 1.0, "lambda": 1.0, "upload": null },
//!   "requests": [ { "server": 1, "time": 0.5 } ]
//! }
//! ```
//!
//! `ServerId` serializes transparently as its `u32`, [`Fixed`] as its raw
//! `i64` micro-unit count, and `f64` through shortest-roundtrip formatting
//! (Rust's `{:?}`), so save/load is value-exact for both scalar modes.

use std::fmt::Write as _;

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::ids::ServerId;
use crate::instance::Instance;
use crate::request::Request;
use crate::scalar::{Fixed, Scalar};

/// A parsed JSON value.
///
/// Numbers keep their lexical class: integer literals that fit an `i64`
/// become [`Json::Int`] (exact for [`Fixed`] micro-units beyond 2^53),
/// everything else becomes [`Json::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal that fits `i64`.
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (from either lexical class).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value, if this is an integer literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ModelError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, val)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    val.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Shortest-roundtrip float rendering; integral values get a `.0` suffix so
/// they re-parse as floats, matching serde_json.
fn write_f64(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "JSON cannot represent non-finite floats");
    let s = format!("{f:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: &str) -> ModelError {
        ModelError::Parse {
            line: 1 + self.bytes[..self.pos]
                .iter()
                .filter(|&&b| b == b'\n')
                .count(),
            detail: format!("JSON: {detail} (byte {})", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ModelError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ModelError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ModelError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ModelError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ModelError> {
        self.eat(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ModelError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not needed by the writer; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ModelError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut lexical_int = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    lexical_int = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if lexical_int {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Scalars with a canonical JSON representation.
///
/// `f64` uses shortest-roundtrip floats; [`Fixed`] uses its raw micro-unit
/// `i64` (the shape the old `#[serde(transparent)]` derive produced), so
/// both modes round-trip value-exactly.
pub trait JsonScalar: Scalar {
    /// This scalar as a JSON value.
    fn to_json(self) -> Json;

    /// Reads a scalar back from its JSON form.
    fn from_json(v: &Json) -> Option<Self>;
}

impl JsonScalar for f64 {
    fn to_json(self) -> Json {
        Json::Float(self)
    }

    fn from_json(v: &Json) -> Option<f64> {
        v.as_f64()
    }
}

impl JsonScalar for Fixed {
    fn to_json(self) -> Json {
        Json::Int(self.micros())
    }

    fn from_json(v: &Json) -> Option<Fixed> {
        v.as_i64().map(Fixed::from_micros)
    }
}

impl<S: JsonScalar> Instance<S> {
    /// This instance as a JSON tree (the archived-trace wire shape).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("servers".into(), Json::Int(self.servers() as i64)),
            (
                "cost".into(),
                Json::Obj(vec![
                    ("mu".into(), self.cost().mu.to_json()),
                    ("lambda".into(), self.cost().lambda.to_json()),
                    (
                        "upload".into(),
                        match self.cost().upload {
                            Some(b) => b.to_json(),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            (
                "requests".into(),
                Json::Arr(
                    self.requests()
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("server".into(), Json::Int(r.server.0 as i64)),
                                ("time".into(), r.time.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Compact JSON text form.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Pretty JSON text form.
    pub fn to_json_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Rebuilds (and re-validates) an instance from a JSON tree.
    pub fn from_json(v: &Json) -> Result<Self, ModelError> {
        let field_err = |what: &str| ModelError::Parse {
            line: 1,
            detail: format!("JSON instance: missing or malformed `{what}`"),
        };
        let servers = v
            .get("servers")
            .and_then(Json::as_i64)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| field_err("servers"))?;
        let cost = v.get("cost").ok_or_else(|| field_err("cost"))?;
        let mu = cost
            .get("mu")
            .and_then(S::from_json)
            .ok_or_else(|| field_err("cost.mu"))?;
        let lambda = cost
            .get("lambda")
            .and_then(S::from_json)
            .ok_or_else(|| field_err("cost.lambda"))?;
        let upload = match cost.get("upload") {
            None | Some(Json::Null) => None,
            Some(b) => Some(S::from_json(b).ok_or_else(|| field_err("cost.upload"))?),
        };
        let mut model = CostModel::new(mu, lambda)?;
        model.upload = upload;
        let requests = v
            .get("requests")
            .and_then(Json::as_arr)
            .ok_or_else(|| field_err("requests"))?
            .iter()
            .map(|r| {
                let server = r
                    .get("server")
                    .and_then(Json::as_i64)
                    .and_then(|s| u32::try_from(s).ok())
                    .ok_or_else(|| field_err("requests[].server"))?;
                let time = r
                    .get("time")
                    .and_then(S::from_json)
                    .ok_or_else(|| field_err("requests[].time"))?;
                Ok(Request {
                    server: ServerId(server),
                    time,
                })
            })
            .collect::<Result<Vec<_>, ModelError>>()?;
        Instance::new(servers, model, requests)
    }

    /// Parses an instance from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ModelError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = Json::parse(r#" {"a": [1, -2.5, null, true, "x\n\"y\""], "b": {}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Float(-2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[4],
            Json::Str("x\n\"y\"".into())
        );
        assert_eq!(v.get("b").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nulll",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn writer_parser_roundtrip_including_pretty() {
        let v = Json::parse(r#"{"k":[0.1,9007199254740993,"s",null,false]}"#).unwrap();
        // i64 beyond 2^53 survives exactly because it stays lexically int.
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1],
            Json::Int(9007199254740993)
        );
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn floats_render_shortest_roundtrip_with_float_marker() {
        assert_eq!(Json::Float(1.0).to_string_compact(), "1.0");
        assert_eq!(Json::Float(0.1).to_string_compact(), "0.1");
        let tricky = 0.1 + 0.2;
        let text = Json::Float(tricky).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), tricky);
    }

    #[test]
    fn instance_roundtrips_in_both_scalar_modes() {
        let inst = Instance::<f64>::from_compact("m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4")
            .unwrap();
        let back = Instance::<f64>::from_json_str(&inst.to_json_string()).unwrap();
        assert_eq!(inst, back);
        let fixed: Instance<Fixed> = inst.map_scalar();
        let back = Instance::<Fixed>::from_json_str(&fixed.to_json_string_pretty()).unwrap();
        assert_eq!(fixed, back);
    }

    #[test]
    fn instance_wire_shape_matches_the_archived_format() {
        let inst = Instance::<f64>::from_compact("m=2 mu=1 lambda=2.5 | s2@0.5").unwrap();
        assert_eq!(
            inst.to_json_string(),
            r#"{"servers":2,"cost":{"mu":1.0,"lambda":2.5,"upload":null},"requests":[{"server":1,"time":0.5}]}"#
        );
    }

    #[test]
    fn instance_from_json_revalidates() {
        let err = Instance::<f64>::from_json_str(
            r#"{"servers":1,"cost":{"mu":1.0,"lambda":1.0,"upload":null},
                "requests":[{"server":5,"time":0.5}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::ServerOutOfRange { .. }));
        let err = Instance::<f64>::from_json_str(r#"{"cost":{},"requests":[]}"#).unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }
}
