//! Pre-scan structures shared by every solver: previous-request pointers
//! `p(i)`, server intervals `σ_i`, marginal cost bounds `b_i` and running
//! bounds `B_i` (Definitions 4–5), plus per-server request lists.

use crate::ids::ServerId;
use crate::instance::Instance;
use crate::scalar::Scalar;

/// Derived request-sequence structure computed in one O(n + m) pass.
///
/// All vectors are indexed by *logical* request index `0..=n` (see
/// [`crate::Instance`] for the convention); entry `0` is the boundary
/// request `r_0`.
#[derive(Clone, Debug)]
pub struct Prescan<S> {
    /// `p[i]`: logical index of the previous request on server `s_i`, or
    /// `None` for the paper's dummy `r_{-j} = (s^j, −∞)` (first request on a
    /// server other than the origin). `p[0]` is `None` by convention.
    pub p: Vec<Option<usize>>,
    /// `σ_i = t_i − t_{p(i)}`; `None` when `p(i)` is the dummy.
    pub sigma: Vec<Option<S>>,
    /// Marginal cost bounds `b_i = min(λ, μσ_i)`; `b_0 = 0`.
    pub b: Vec<S>,
    /// Running bounds `B_i = Σ_{j≤i} b_j`; `B_0 = 0`.
    pub big_b: Vec<S>,
    /// Logical indices of requests on each server, ascending. The origin's
    /// list starts with the boundary request `0`.
    pub by_server: Vec<Vec<u32>>,
}

impl<S: Scalar> Prescan<S> {
    /// Runs the pre-scan over an instance.
    pub fn compute(inst: &Instance<S>) -> Self {
        let n = inst.n();
        let m = inst.servers();
        let mut p = vec![None; n + 1];
        let mut sigma = vec![None; n + 1];
        let mut b = vec![S::ZERO; n + 1];
        let mut big_b = vec![S::ZERO; n + 1];
        let mut by_server: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut last_on: Vec<Option<usize>> = vec![None; m];

        // Boundary request r_0 = (s^1, 0).
        by_server[ServerId::ORIGIN.index()].push(0);
        last_on[ServerId::ORIGIN.index()] = Some(0);

        let mut running = S::ZERO;
        for i in 1..=n {
            let s = inst.server(i).index();
            p[i] = last_on[s];
            sigma[i] = p[i].map(|prev| inst.t(i) - inst.t(prev));
            b[i] = inst.cost().marginal_bound(sigma[i]);
            running = running + b[i];
            big_b[i] = running;
            by_server[s].push(i as u32);
            last_on[s] = Some(i);
        }

        Prescan {
            p,
            sigma,
            b,
            big_b,
            by_server,
        }
    }

    /// `B_j − B_i` for `i ≤ j`: the summed marginal bounds of requests
    /// `r_{i+1} … r_j`.
    #[inline]
    pub fn bound_between(&self, i: usize, j: usize) -> S {
        debug_assert!(i <= j);
        self.big_b[j] - self.big_b[i]
    }

    /// The lower bound `B_n ≤ C(n)` on the optimal cost of the whole
    /// sequence (Definition 5 and the observation following it).
    #[inline]
    pub fn total_lower_bound(&self) -> S {
        *self.big_b.last().expect("big_b always has entry 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reconstructed Fig. 6 instance (see `mcc-core::offline` golden
    /// tests for the full derivation).
    fn fig6() -> Instance<f64> {
        Instance::from_compact(
            "m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4 s2@2.6 s2@3.2 s3@4.0",
        )
        .unwrap()
    }

    #[test]
    fn previous_request_pointers() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.p[0], None);
        assert_eq!(scan.p[1], None); // first on s^2
        assert_eq!(scan.p[2], None); // first on s^3
        assert_eq!(scan.p[3], None); // first on s^4
        assert_eq!(scan.p[4], Some(0)); // s^1 after boundary r_0
        assert_eq!(scan.p[5], Some(1)); // s^2 after r_1
        assert_eq!(scan.p[6], Some(5)); // s^2 after r_5
        assert_eq!(scan.p[7], Some(2)); // s^3 after r_2
    }

    #[test]
    fn sigma_matches_paper_fig6() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.sigma[1], None);
        assert!((scan.sigma[4].unwrap() - 1.4).abs() < 1e-12);
        assert!((scan.sigma[5].unwrap() - 2.1).abs() < 1e-12);
        assert!((scan.sigma[6].unwrap() - 0.6).abs() < 1e-12);
        assert!((scan.sigma[7].unwrap() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn running_bounds_match_paper_fig6() {
        // Paper's table: B_3 = 3, B_4 = 4, B_5 = 5, B_6 = 5.6, B_7 = 6.6.
        let scan = Prescan::compute(&fig6());
        let expect = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.6, 6.6];
        for (i, e) in expect.iter().enumerate() {
            assert!(
                (scan.big_b[i] - e).abs() < 1e-9,
                "B_{i} = {} expected {e}",
                scan.big_b[i]
            );
        }
        assert!((scan.total_lower_bound() - 6.6).abs() < 1e-9);
    }

    #[test]
    fn by_server_lists_are_ascending_and_complete() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.by_server[0], vec![0, 4]);
        assert_eq!(scan.by_server[1], vec![1, 5, 6]);
        assert_eq!(scan.by_server[2], vec![2, 7]);
        assert_eq!(scan.by_server[3], vec![3]);
        let total: usize = scan.by_server.iter().map(Vec::len).sum();
        assert_eq!(total, 8); // 7 requests + boundary
    }

    #[test]
    fn bound_between_is_prefix_difference() {
        let scan = Prescan::compute(&fig6());
        assert!((scan.bound_between(2, 6) - 3.6).abs() < 1e-9);
        assert_eq!(scan.bound_between(3, 3), 0.0);
    }

    #[test]
    fn empty_instance_prescan() {
        let inst = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 |").unwrap();
        let scan = Prescan::compute(&inst);
        assert_eq!(scan.p, vec![None]);
        assert_eq!(scan.total_lower_bound(), 0.0);
        assert_eq!(scan.by_server[0], vec![0]);
        assert!(scan.by_server[1].is_empty());
    }
}
