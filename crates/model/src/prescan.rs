//! Pre-scan structures shared by every solver: previous-request pointers
//! `p(i)`, server intervals `σ_i`, marginal cost bounds `b_i` and running
//! bounds `B_i` (Definitions 4–5), plus per-server request lists.

use crate::ids::ServerId;
use crate::instance::Instance;
use crate::scalar::Scalar;

/// Sentinel inside the `last_on` scratch: no request seen on that server.
const NO_REQ: u32 = u32::MAX;

/// Derived request-sequence structure computed in one O(n + m) pass.
///
/// All vectors are indexed by *logical* request index `0..=n` (see
/// [`crate::Instance`] for the convention); entry `0` is the boundary
/// request `r_0`.
///
/// The per-server request lists are stored in CSR form — one flat index
/// array plus `m + 1` offsets — so a whole pre-scan is two list allocations
/// instead of one `Vec` per server, and walking a server's requests is a
/// contiguous slice scan. Use [`Prescan::server_list`] /
/// [`Prescan::server_lists`] to read them.
///
/// A `Prescan` is reusable: [`Prescan::recompute`] refills every buffer in
/// place, so steady-state re-solves over same-shaped instances perform no
/// heap allocation (see `mcc-core`'s `SolverWorkspace`).
#[derive(Clone, Debug)]
pub struct Prescan<S> {
    /// `p[i]`: logical index of the previous request on server `s_i`, or
    /// `None` for the paper's dummy `r_{-j} = (s^j, −∞)` (first request on a
    /// server other than the origin). `p[0]` is `None` by convention.
    pub p: Vec<Option<usize>>,
    /// `σ_i = t_i − t_{p(i)}`; `None` when `p(i)` is the dummy.
    pub sigma: Vec<Option<S>>,
    /// Marginal cost bounds `b_i = min(λ, μσ_i)`; `b_0 = 0`.
    pub b: Vec<S>,
    /// Running bounds `B_i = Σ_{j≤i} b_j`; `B_0 = 0`.
    pub big_b: Vec<S>,
    /// CSR offsets: server `j`'s requests are
    /// `items[offsets[j] .. offsets[j + 1]]`; `offsets.len() == m + 1`.
    offsets: Vec<u32>,
    /// All logical request indices, grouped by server, ascending within
    /// each group. The origin's group starts with the boundary request `0`.
    items: Vec<u32>,
    /// Scratch: most recent logical index per server ([`NO_REQ`] if none).
    last_on: Vec<u32>,
}

/// Borrowed view of the CSR per-server request lists (non-generic, so
/// solver internals that only need the lists don't carry the scalar type).
#[derive(Copy, Clone, Debug)]
pub struct ServerLists<'a> {
    offsets: &'a [u32],
    items: &'a [u32],
}

impl<'a> ServerLists<'a> {
    /// Number of servers `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when there are no servers (never for a valid instance).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ascending logical request indices on server `j`.
    #[inline]
    pub fn list(&self, j: usize) -> &'a [u32] {
        &self.items[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    /// Iterates the per-server lists in server order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u32]> + '_ {
        (0..self.len()).map(|j| self.list(j))
    }
}

impl<S: Scalar> Default for Prescan<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Prescan<S> {
    /// An empty pre-scan holding no instance (fill with
    /// [`Prescan::recompute`]). All buffers start unallocated.
    pub fn new() -> Self {
        Prescan {
            p: Vec::new(),
            sigma: Vec::new(),
            b: Vec::new(),
            big_b: Vec::new(),
            offsets: Vec::new(),
            items: Vec::new(),
            last_on: Vec::new(),
        }
    }

    /// Runs the pre-scan over an instance.
    pub fn compute(inst: &Instance<S>) -> Self {
        let mut scan = Self::new();
        scan.recompute(inst);
        scan
    }

    /// Re-runs the pre-scan in place, reusing every buffer. Allocation-free
    /// once the buffers have grown to the instance's `n` and `m`.
    pub fn recompute(&mut self, inst: &Instance<S>) {
        let n = inst.n();
        let m = inst.servers();

        self.p.clear();
        self.p.resize(n + 1, None);
        self.sigma.clear();
        self.sigma.resize(n + 1, None);
        self.b.clear();
        self.b.resize(n + 1, S::ZERO);
        self.big_b.clear();
        self.big_b.resize(n + 1, S::ZERO);
        self.last_on.clear();
        self.last_on.resize(m, NO_REQ);

        // CSR counting pass: offsets[s + 1] accumulates server s's request
        // count (boundary r_0 included), then a prefix sum turns counts
        // into group start offsets.
        self.offsets.clear();
        self.offsets.resize(m + 1, 0);
        self.offsets[ServerId::ORIGIN.index() + 1] = 1;
        for r in inst.requests() {
            self.offsets[r.server.index() + 1] += 1;
        }
        for j in 0..m {
            self.offsets[j + 1] += self.offsets[j];
        }
        let total = (n + 1) as u32;
        debug_assert_eq!(self.offsets[m], total);
        self.items.clear();
        self.items.resize(n + 1, 0);

        // Fill pass: p/σ/b/B plus the CSR items, using offsets[j] as the
        // per-server write cursor (restored by a shift afterwards).
        let place = |items: &mut [u32], offsets: &mut [u32], s: usize, i: usize| {
            let at = offsets[s];
            items[at as usize] = i as u32;
            offsets[s] = at + 1;
        };

        // Boundary request r_0 = (s^1, 0).
        place(
            &mut self.items,
            &mut self.offsets,
            ServerId::ORIGIN.index(),
            0,
        );
        self.last_on[ServerId::ORIGIN.index()] = 0;

        let mut running = S::ZERO;
        for i in 1..=n {
            let s = inst.server(i).index();
            let prev = self.last_on[s];
            if prev != NO_REQ {
                let prev = prev as usize;
                self.p[i] = Some(prev);
                self.sigma[i] = Some(inst.t(i) - inst.t(prev));
            }
            self.b[i] = inst.cost().marginal_bound(self.sigma[i]);
            running = running + self.b[i];
            self.big_b[i] = running;
            place(&mut self.items, &mut self.offsets, s, i);
            self.last_on[s] = i as u32;
        }

        // Each cursor has advanced to the next group's start: offsets[j]
        // now holds the old offsets[j + 1]. Shift right to restore.
        for j in (1..=m).rev() {
            self.offsets[j] = self.offsets[j - 1];
        }
        self.offsets[0] = 0;
        debug_assert_eq!(self.offsets[m], total);
    }

    /// Number of servers `m` this pre-scan was computed for.
    #[inline]
    pub fn servers(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Ascending logical request indices on server `j`. The origin's list
    /// starts with the boundary request `0`.
    #[inline]
    pub fn server_list(&self, j: usize) -> &[u32] {
        &self.items[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    /// Borrowed CSR view of all per-server lists.
    #[inline]
    pub fn server_lists(&self) -> ServerLists<'_> {
        ServerLists {
            offsets: &self.offsets,
            items: &self.items,
        }
    }

    /// `B_j − B_i` for `i ≤ j`: the summed marginal bounds of requests
    /// `r_{i+1} … r_j`.
    #[inline]
    pub fn bound_between(&self, i: usize, j: usize) -> S {
        debug_assert!(i <= j);
        self.big_b[j] - self.big_b[i]
    }

    /// The lower bound `B_n ≤ C(n)` on the optimal cost of the whole
    /// sequence (Definition 5 and the observation following it).
    #[inline]
    pub fn total_lower_bound(&self) -> S {
        *self.big_b.last().expect("big_b always has entry 0")
    }

    /// Stages `insts` into one packed [`PrescanBatch`] — the batched
    /// variant of the pre-scan, one lane per instance. Convenience over
    /// [`PrescanBatch::push`]; batch callers that stage incrementally
    /// (and allocation-free) drive a reusable `PrescanBatch` directly.
    pub fn batch(insts: &[&Instance<S>]) -> PrescanBatch<S> {
        let mut batch = PrescanBatch::new();
        for inst in insts {
            batch.push(inst);
        }
        batch
    }
}

/// Chunk width of the batched running-bound pass: chunks are unrolled so
/// the loop control amortizes, while the adds stay in left-to-right order
/// (see [`PrescanBatch`] — associativity is what keeps the lanes
/// bit-identical to the scalar [`Prescan`]).
const BIG_B_CHUNK: usize = 4;

/// Structure-of-arrays pre-scan over a batch of instances.
///
/// Where [`Prescan`] derives one instance's `p`/`σ`/`b`/`B` tables as
/// `Option`-carrying vectors, a `PrescanBatch` packs K instances into
/// contiguous *lanes*: instance `k` occupies index range
/// `starts[k]..starts[k+1]` (length `n_k + 1`, entry 0 the boundary
/// request) of every packed array. The packing changes representation,
/// never values:
///
/// * `p1` stores the previous-request pointer **shifted by one** —
///   `p(i) + 1`, with `0` encoding the paper's `−∞` dummy. The shift makes
///   the pivot-window membership test `p(k) < p(i)` (dummy compares below
///   every real index) a single unsigned compare, `p1[k] < p1[i]`, with no
///   `Option` discriminant to branch on.
/// * `sigma` holds `σ_i = t_i − t_{p(i)}` in real lanes and `0` in dummy
///   lanes (a *safe finite placeholder*, never `∞`: [`Scalar::mul`] must
///   not see an infinite operand). Dummy entries are masked via `p1`.
/// * `b` is computed branch-free: `min(λ, μσ)` unconditionally (finite by
///   the placeholder), then a select on `p1 == 0` pins dummy lanes to `λ`
///   — exactly [`crate::CostModel::marginal_bound`], without its `Option`
///   match in the hot loop.
/// * `big_b` is the running sum over `b`, accumulated in chunks of
///   `BIG_B_CHUNK` with left-to-right association preserved, so every
///   entry is bit-identical to the scalar [`Prescan::recompute`] result
///   (floating-point addition does not reassociate for free).
///
/// The batch holds no CSR per-server lists: the batched DP kernel
/// enumerates pivots from the `p1` lane alone (the windowed sweep), so the
/// CSR build — a full counting + fill + shift pass per instance in the
/// scalar pre-scan — is skipped entirely. That is where the amortized
/// per-instance setup saving comes from.
///
/// A `PrescanBatch` is reusable: [`PrescanBatch::clear`] keeps every
/// buffer's capacity, so staging a new batch of no larger total size
/// performs no heap allocation.
#[derive(Clone, Debug)]
pub struct PrescanBatch<S> {
    /// Lane boundaries: instance `k` spans `starts[k]..starts[k+1]`.
    starts: Vec<u32>,
    /// Per-instance caching rate `μ`.
    mu: Vec<S>,
    /// Per-instance transfer charge `λ`.
    lambda: Vec<S>,
    /// Packed request times `t_0..t_n` per lane (`t_0 = 0`).
    pub t: Vec<S>,
    /// Packed shifted previous-pointers `p(i) + 1` (`0` = dummy).
    pub p1: Vec<u32>,
    /// Packed `σ_i` (0 in dummy lanes; mask with `p1`).
    pub sigma: Vec<S>,
    /// Packed marginal bounds `b_i = min(λ, μσ_i)`; `b_0 = 0`.
    pub b: Vec<S>,
    /// Packed running bounds `B_i`; `B_0 = 0`.
    pub big_b: Vec<S>,
    /// Scratch: most recent logical index per server while staging.
    last_on: Vec<u32>,
}

impl<S: Scalar> Default for PrescanBatch<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> PrescanBatch<S> {
    /// An empty batch; buffers grow on first use.
    pub fn new() -> Self {
        PrescanBatch {
            starts: vec![0],
            mu: Vec::new(),
            lambda: Vec::new(),
            t: Vec::new(),
            p1: Vec::new(),
            sigma: Vec::new(),
            b: Vec::new(),
            big_b: Vec::new(),
            last_on: Vec::new(),
        }
    }

    /// Drops every staged instance, keeping all buffer capacity.
    pub fn clear(&mut self) {
        self.starts.clear();
        self.starts.push(0);
        self.mu.clear();
        self.lambda.clear();
        self.t.clear();
        self.p1.clear();
        self.sigma.clear();
        self.b.clear();
        self.big_b.clear();
    }

    /// Number of staged instances `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// `true` when no instance is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lane `k`'s index range into the packed arrays.
    #[inline]
    pub fn lane(&self, k: usize) -> std::ops::Range<usize> {
        self.starts[k] as usize..self.starts[k + 1] as usize
    }

    /// Requests `n_k` of staged instance `k`.
    #[inline]
    pub fn n_of(&self, k: usize) -> usize {
        (self.starts[k + 1] - self.starts[k]) as usize - 1
    }

    /// Caching rate `μ` of staged instance `k`.
    #[inline]
    pub fn mu_of(&self, k: usize) -> S {
        self.mu[k]
    }

    /// Transfer charge `λ` of staged instance `k`.
    #[inline]
    pub fn lambda_of(&self, k: usize) -> S {
        self.lambda[k]
    }

    /// Stages one instance: appends its lane to every packed array.
    /// Allocation-free while the buffers' capacity lasts.
    pub fn push(&mut self, inst: &Instance<S>) {
        let n = inst.n();
        let base = self.t.len();
        let cost = *inst.cost();
        self.mu.push(cost.mu);
        self.lambda.push(cost.lambda);

        self.last_on.clear();
        self.last_on.resize(inst.servers(), NO_REQ);
        self.last_on[ServerId::ORIGIN.index()] = 0;

        // Pass 1 — times, shifted pointers and raw σ, one scan over the
        // requests (the same recurrence as `Prescan::recompute`, so σ is
        // the identical subtraction `t_i − t_{p(i)}`).
        self.t.push(S::ZERO);
        self.p1.push(0);
        self.sigma.push(S::ZERO);
        for (idx, r) in inst.requests().iter().enumerate() {
            let i = (idx + 1) as u32;
            let s = r.server.index();
            let prev = self.last_on[s];
            self.t.push(r.time);
            if prev == NO_REQ {
                self.p1.push(0);
                self.sigma.push(S::ZERO);
            } else {
                self.p1.push(prev + 1);
                self.sigma.push(r.time - self.t[base + prev as usize]);
            }
            self.last_on[s] = i;
        }

        // Pass 2 — branch-free marginal bounds over the lane: the
        // speculative bound `min(λ, μσ)` computes unconditionally (σ = 0
        // in dummy lanes keeps the product finite), and a select pins
        // dummy entries to λ. No branch, no Option: the pass
        // autovectorizes.
        self.b.push(S::ZERO);
        for j in base + 1..base + n + 1 {
            let speculative = cost.lambda.min2(cost.mu.mul(self.sigma[j]));
            self.b.push(if self.p1[j] == 0 {
                cost.lambda
            } else {
                speculative
            });
        }

        // Pass 3 — running bounds in unrolled chunks. The adds stay in
        // lane order (left-to-right), so `big_b` is bit-identical to the
        // scalar pre-scan's running sum.
        self.big_b.push(S::ZERO);
        let mut running = S::ZERO;
        let mut j = base + 1;
        let end = base + n + 1;
        while j + BIG_B_CHUNK <= end {
            for step in 0..BIG_B_CHUNK {
                running = running + self.b[j + step];
                self.big_b.push(running);
            }
            j += BIG_B_CHUNK;
        }
        while j < end {
            running = running + self.b[j];
            self.big_b.push(running);
            j += 1;
        }

        self.starts.push(self.t.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reconstructed Fig. 6 instance (see `mcc-core::offline` golden
    /// tests for the full derivation).
    fn fig6() -> Instance<f64> {
        Instance::from_compact(
            "m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4 s2@2.6 s2@3.2 s3@4.0",
        )
        .unwrap()
    }

    #[test]
    fn previous_request_pointers() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.p[0], None);
        assert_eq!(scan.p[1], None); // first on s^2
        assert_eq!(scan.p[2], None); // first on s^3
        assert_eq!(scan.p[3], None); // first on s^4
        assert_eq!(scan.p[4], Some(0)); // s^1 after boundary r_0
        assert_eq!(scan.p[5], Some(1)); // s^2 after r_1
        assert_eq!(scan.p[6], Some(5)); // s^2 after r_5
        assert_eq!(scan.p[7], Some(2)); // s^3 after r_2
    }

    #[test]
    fn sigma_matches_paper_fig6() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.sigma[1], None);
        assert!((scan.sigma[4].unwrap() - 1.4).abs() < 1e-12);
        assert!((scan.sigma[5].unwrap() - 2.1).abs() < 1e-12);
        assert!((scan.sigma[6].unwrap() - 0.6).abs() < 1e-12);
        assert!((scan.sigma[7].unwrap() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn running_bounds_match_paper_fig6() {
        // Paper's table: B_3 = 3, B_4 = 4, B_5 = 5, B_6 = 5.6, B_7 = 6.6.
        let scan = Prescan::compute(&fig6());
        let expect = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.6, 6.6];
        for (i, e) in expect.iter().enumerate() {
            assert!(
                (scan.big_b[i] - e).abs() < 1e-9,
                "B_{i} = {} expected {e}",
                scan.big_b[i]
            );
        }
        assert!((scan.total_lower_bound() - 6.6).abs() < 1e-9);
    }

    #[test]
    fn by_server_lists_are_ascending_and_complete() {
        let scan = Prescan::compute(&fig6());
        assert_eq!(scan.server_list(0), &[0, 4]);
        assert_eq!(scan.server_list(1), &[1, 5, 6]);
        assert_eq!(scan.server_list(2), &[2, 7]);
        assert_eq!(scan.server_list(3), &[3]);
        let lists = scan.server_lists();
        assert_eq!(lists.len(), 4);
        let total: usize = lists.iter().map(<[u32]>::len).sum();
        assert_eq!(total, 8); // 7 requests + boundary
    }

    /// CSR must agree with the straightforward nested-`Vec` layout the
    /// solvers used before the flattening.
    #[test]
    fn csr_matches_the_nested_layout_on_fig6() {
        let inst = fig6();
        let scan = Prescan::compute(&inst);
        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); inst.servers()];
        nested[ServerId::ORIGIN.index()].push(0);
        for i in 1..=inst.n() {
            nested[inst.server(i).index()].push(i as u32);
        }
        for (j, expect) in nested.iter().enumerate() {
            assert_eq!(scan.server_list(j), expect.as_slice(), "server {j}");
            assert_eq!(scan.server_lists().list(j), expect.as_slice());
        }
    }

    #[test]
    fn recompute_reuses_buffers_across_shapes() {
        let mut scan = Prescan::compute(&fig6());
        let small = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s2@0.5 s1@1.0").unwrap();
        scan.recompute(&small);
        assert_eq!(scan.servers(), 2);
        assert_eq!(scan.p.len(), 3);
        assert_eq!(scan.server_list(0), &[0, 2]);
        assert_eq!(scan.server_list(1), &[1]);
        // Back to the larger instance: identical to a fresh computation.
        scan.recompute(&fig6());
        let fresh = Prescan::compute(&fig6());
        assert_eq!(scan.p, fresh.p);
        assert_eq!(scan.big_b, fresh.big_b);
        for j in 0..4 {
            assert_eq!(scan.server_list(j), fresh.server_list(j));
        }
    }

    #[test]
    fn bound_between_is_prefix_difference() {
        let scan = Prescan::compute(&fig6());
        assert!((scan.bound_between(2, 6) - 3.6).abs() < 1e-9);
        assert_eq!(scan.bound_between(3, 3), 0.0);
    }

    #[test]
    fn batch_lanes_match_scalar_prescan_bit_for_bit() {
        let a = fig6();
        let b = Instance::<f64>::from_compact("m=2 mu=2 lambda=3 | s2@0.5 s1@1.0 s2@4.5").unwrap();
        let empty = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 |").unwrap();
        let batch = Prescan::batch(&[&a, &b, &empty]);
        assert_eq!(batch.len(), 3);
        for (k, inst) in [&a, &b, &empty].iter().enumerate() {
            let scan = Prescan::compute(inst);
            let lane = batch.lane(k);
            assert_eq!(batch.n_of(k), inst.n());
            assert_eq!(batch.mu_of(k), inst.cost().mu);
            assert_eq!(batch.lambda_of(k), inst.cost().lambda);
            for i in 0..=inst.n() {
                let at = lane.start + i;
                assert_eq!(batch.t[at], inst.t(i), "t lane {k}/{i}");
                let p1 = scan.p[i].map_or(0, |p| p as u32 + 1);
                assert_eq!(batch.p1[at], p1, "p1 lane {k}/{i}");
                if let Some(sigma) = scan.sigma[i] {
                    assert_eq!(batch.sigma[at], sigma, "sigma lane {k}/{i}");
                }
                assert_eq!(batch.b[at], scan.b[i], "b lane {k}/{i}");
                assert_eq!(batch.big_b[at], scan.big_b[i], "big_b lane {k}/{i}");
            }
        }
    }

    #[test]
    fn batch_clear_reuses_lanes_without_state_leaks() {
        let a = fig6();
        let small = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s2@0.5 s1@1.0").unwrap();
        let mut batch = PrescanBatch::new();
        batch.push(&a);
        batch.push(&a);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&small);
        let fresh = Prescan::batch(&[&small]);
        assert_eq!(batch.p1, fresh.p1);
        assert_eq!(batch.big_b, fresh.big_b);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn empty_instance_prescan() {
        let inst = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 |").unwrap();
        let scan = Prescan::compute(&inst);
        assert_eq!(scan.p, vec![None]);
        assert_eq!(scan.total_lower_bound(), 0.0);
        assert_eq!(scan.server_list(0), &[0]);
        assert!(scan.server_list(1).is_empty());
    }
}
