//! Standard form (Observation 1) and sub-schedules (Definition 3).
//!
//! A schedule is in *standard form* when every transfer occurs at a
//! request time and ends on the requesting server, and no cache interval
//! dead-ends (extends past the last request or transfer-source instant on
//! its server). Observation 1 guarantees an optimal schedule of this shape
//! exists; the off-line reconstruction produces one, and this module makes
//! the property checkable. Online schedules are *not* standard form — the
//! speculative tails are exactly the dead-ends the check reports, which is
//! a useful structural contrast in tests.
//!
//! The *primary sub-schedule* `Ψ^(−1)(i)` (Definition 3) restricts a
//! schedule to what is needed for `r_0 … r_i`: transfers after `t_i` are
//! dropped and cache intervals are truncated to their last remaining use.
//! The paper notes `Ψ^(−1)(i)` of an optimal schedule need not be optimal
//! for the shorter instance — a property the tests demonstrate
//! constructively.

use crate::instance::Instance;
use crate::scalar::Scalar;
use crate::schedule::Schedule;

/// A defect that makes a schedule non-standard-form.
#[derive(Debug, Clone, PartialEq)]
pub enum NonStandard {
    /// A transfer whose time matches no request instant.
    TransferOffRequest {
        /// The transfer's time.
        at: f64,
    },
    /// A transfer that ends on a server other than the requester at that
    /// instant.
    TransferWrongDestination {
        /// The transfer's time.
        at: f64,
    },
    /// A cache interval extending beyond its server's last use.
    DeadEndCache {
        /// Zero-based server index.
        server: usize,
        /// Interval end time.
        to: f64,
        /// Last use (request served or transfer sourced) on that server.
        last_use: f64,
    },
}

/// Checks Observation 1's standard form. Returns all defects (empty =
/// standard form). Assumes the schedule is feasible (run
/// [`crate::validate::validate`] first).
pub fn standard_form_defects<S: Scalar>(
    inst: &Instance<S>,
    sched: &Schedule<S>,
) -> Vec<NonStandard> {
    let mut defects = Vec::new();
    let eq = |a: S, b: S| a.approx_eq(b, 1e-9);

    // Transfers end at requests, on the requesting server.
    for tr in &sched.transfers {
        let mut found_time = false;
        let mut found_dst = false;
        for i in 1..=inst.n() {
            if eq(inst.t(i), tr.at) {
                found_time = true;
                if inst.server(i) == tr.dst {
                    found_dst = true;
                    break;
                }
            }
        }
        if !found_time {
            defects.push(NonStandard::TransferOffRequest { at: tr.at.to_f64() });
        } else if !found_dst {
            defects.push(NonStandard::TransferWrongDestination { at: tr.at.to_f64() });
        }
    }

    // No dead-end caches: each interval's end is a use on that server.
    for h in &sched.caches {
        let mut last_use = h.from;
        for i in 1..=inst.n() {
            if inst.server(i) == h.server && h.covers(inst.t(i)) && inst.t(i) > last_use {
                last_use = inst.t(i);
            }
        }
        for tr in &sched.transfers {
            if tr.src == h.server && h.covers(tr.at) && tr.at > last_use {
                last_use = tr.at;
            }
        }
        if h.to > last_use && !eq(h.to, last_use) {
            defects.push(NonStandard::DeadEndCache {
                server: h.server.index(),
                to: h.to.to_f64(),
                last_use: last_use.to_f64(),
            });
        }
    }
    defects
}

/// Convenience: `true` when [`standard_form_defects`] is empty.
pub fn is_standard_form<S: Scalar>(inst: &Instance<S>, sched: &Schedule<S>) -> bool {
    standard_form_defects(inst, sched).is_empty()
}

/// The truncated instance containing only `r_1 … r_i` (same servers, same
/// cost model).
pub fn truncate_instance<S: Scalar>(inst: &Instance<S>, i: usize) -> Instance<S> {
    debug_assert!(i <= inst.n());
    Instance::new(inst.servers(), *inst.cost(), inst.requests()[..i].to_vec())
        .expect("prefix of a valid instance is valid")
}

/// The primary sub-schedule `Ψ^(−1)(i)` (Definition 3): drops transfers
/// after `t_i` and truncates every cache interval to its last remaining
/// use (the paper's example: `r_7@s_3`'s interval shrinks back to the last
/// prior event on `s_3`).
///
/// The result is normalized and serves `r_0 … r_i`; it is generally *not*
/// optimal for the truncated instance.
pub fn sub_schedule<S: Scalar>(inst: &Instance<S>, sched: &Schedule<S>, i: usize) -> Schedule<S> {
    let t_cut = inst.t(i);
    let mut out = Schedule::new();
    for tr in &sched.transfers {
        if tr.at <= t_cut {
            out.transfer(tr.src, tr.dst, tr.at);
        }
    }
    for h in &sched.caches {
        if h.from > t_cut {
            continue;
        }
        // Truncate to the last use ≤ min(h.to, t_cut).
        let cap = h.to.min2(t_cut);
        let mut last_use = h.from;
        for j in 1..=i {
            if inst.server(j) == h.server && inst.t(j) >= h.from && inst.t(j) <= cap {
                last_use = last_use.max2(inst.t(j));
            }
        }
        for tr in &out.transfers {
            if tr.src == h.server && tr.at >= h.from && tr.at <= cap {
                last_use = last_use.max2(tr.at);
            }
        }
        out.cache(h.server, h.from, last_use);
    }
    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    /// Fig. 6 instance; its optimal schedule is standard form.
    fn fig6() -> Instance<f64> {
        Instance::from_compact(
            "m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4 s2@2.6 s2@3.2 s3@4.0",
        )
        .unwrap()
    }

    /// A hand-built standard-form schedule for a small instance.
    fn tiny() -> (Instance<f64>, Schedule<f64>) {
        let inst = Instance::from_compact("m=2 mu=1 lambda=1 | s2@0.5 s2@1.0").unwrap();
        let mut sched = Schedule::new();
        sched.cache(crate::ServerId(0), 0.0, 0.5);
        sched.cache(crate::ServerId(1), 0.5, 1.0);
        sched.transfer(crate::ServerId(0), crate::ServerId(1), 0.5);
        (inst, sched)
    }

    #[test]
    fn hand_built_schedule_is_standard_form() {
        let (inst, sched) = tiny();
        validate(&inst, &sched).unwrap();
        assert!(is_standard_form(&inst, &sched));
    }

    #[test]
    fn dead_end_cache_is_flagged() {
        let (inst, mut sched) = tiny();
        sched.caches[1].to = 1.7; // speculative tail past the last request
        let defects = standard_form_defects(&inst, &sched);
        assert!(
            matches!(
                defects.as_slice(),
                [NonStandard::DeadEndCache { server: 1, .. }]
            ),
            "{defects:?}"
        );
    }

    #[test]
    fn off_request_transfer_is_flagged() {
        let (inst, mut sched) = tiny();
        sched.transfers[0].at = 0.3;
        sched.caches[1].from = 0.3;
        let defects = standard_form_defects(&inst, &sched);
        assert!(
            defects
                .iter()
                .any(|d| matches!(d, NonStandard::TransferOffRequest { .. })),
            "{defects:?}"
        );
    }

    #[test]
    fn wrong_destination_transfer_is_flagged() {
        let inst = Instance::from_compact("m=3 mu=1 lambda=1 | s2@0.5").unwrap();
        let mut sched = Schedule::new();
        sched.cache(crate::ServerId(0), 0.0, 0.5);
        // Proactive push to s^3, who requested nothing.
        sched.transfer(crate::ServerId(0), crate::ServerId(2), 0.5);
        let defects = standard_form_defects(&inst, &sched);
        assert!(
            defects
                .iter()
                .any(|d| matches!(d, NonStandard::TransferWrongDestination { .. })),
            "{defects:?}"
        );
    }

    #[test]
    fn truncate_instance_keeps_prefix() {
        let inst = fig6();
        let cut = truncate_instance(&inst, 3);
        assert_eq!(cut.n(), 3);
        assert_eq!(cut.t(3), 1.1);
        assert_eq!(cut.cost(), inst.cost());
    }

    #[test]
    fn sub_schedule_serves_the_prefix() {
        let (inst, sched) = tiny();
        let sub = sub_schedule(&inst, &sched, 1);
        let cut = truncate_instance(&inst, 1);
        let v = validate(&cut, &sub).unwrap();
        // The s^2 interval shrinks back to the transfer instant.
        assert!((v.total - (0.5 + 1.0)).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn sub_schedule_drops_later_transfers() {
        let inst = Instance::from_compact("m=2 mu=1 lambda=1 | s2@0.5 s1@2.0").unwrap();
        let mut sched = Schedule::new();
        sched.cache(crate::ServerId(0), 0.0, 0.5);
        sched.cache(crate::ServerId(1), 0.5, 2.0);
        sched.transfer(crate::ServerId(0), crate::ServerId(1), 0.5);
        sched.transfer(crate::ServerId(1), crate::ServerId(0), 2.0);
        validate(&inst, &sched).unwrap();
        let sub = sub_schedule(&inst, &sched, 1);
        assert_eq!(sub.transfers.len(), 1);
        let cut = truncate_instance(&inst, 1);
        validate(&cut, &sub).unwrap();
    }
}
