//! Strongly typed identifiers.
//!
//! The paper distinguishes server *labels* `s^j` (the j-th server) from the
//! *reference* `s_i` (the server of the i-th request). [`ServerId`] models
//! the label; request references are plain 1-based indices into the request
//! sequence (see `mcc-model::instance`), matching the paper's `r_i`.

use std::fmt;

/// A server label `s^j`. Zero-based internally; displays 1-based as `s^j` to
/// match the paper (so `ServerId(0)` prints as `s^1`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The conventional origin server `s^1` that initially holds the item.
    pub const ORIGIN: ServerId = ServerId(0);

    /// Zero-based index for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds from a zero-based index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ServerId(u32::try_from(i).expect("server index fits in u32"))
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s^{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(ServerId(0).to_string(), "s^1");
        assert_eq!(ServerId(3).to_string(), "s^4");
    }

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 17, 4095] {
            assert_eq!(ServerId::from_index(i).index(), i);
        }
    }

    #[test]
    fn origin_is_first_server() {
        assert_eq!(ServerId::ORIGIN, ServerId(0));
        assert_eq!(ServerId::ORIGIN.to_string(), "s^1");
    }
}
