//! A single data-item request `r_i = (s_i, t_i)`.

use std::fmt;

use crate::ids::ServerId;
use crate::scalar::Scalar;

/// A request for the shared data item made at server `server` at time `time`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Request<S> {
    /// The server `s_i` the request is made from.
    pub server: ServerId,
    /// The request time `t_i` (strictly positive; strictly increasing along
    /// the sequence).
    pub time: S,
}

impl<S: Scalar> Request<S> {
    /// Convenience constructor.
    #[inline]
    pub fn new(server: ServerId, time: S) -> Self {
        Request { server, time }
    }

    /// Constructor from a zero-based server index and an `f64` time.
    #[inline]
    pub fn at(server_index: usize, time: f64) -> Self {
        Request {
            server: ServerId::from_index(server_index),
            time: S::from_f64(time),
        }
    }
}

impl<S: Scalar> fmt::Display for Request<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.server, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_tuple_form() {
        let r: Request<f64> = Request::at(1, 0.5);
        assert_eq!(r.to_string(), "(s^2, 0.5)");
    }

    #[test]
    fn constructors_agree() {
        let a: Request<f64> = Request::new(ServerId(2), 1.5);
        let b: Request<f64> = Request::at(2, 1.5);
        assert_eq!(a, b);
    }
}
