//! Fluent construction of problem instances.

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::instance::Instance;
use crate::request::Request;
use crate::scalar::Scalar;

/// Fluent builder for [`Instance`].
///
/// ```
/// use mcc_model::InstanceBuilder;
///
/// let inst = InstanceBuilder::<f64>::new(4)
///     .mu(1.0)
///     .lambda(1.0)
///     .request(1, 0.5) // s^2 @ 0.5 (zero-based server index)
///     .request(2, 0.8)
///     .build()
///     .unwrap();
/// assert_eq!(inst.n(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct InstanceBuilder<S> {
    servers: usize,
    mu: f64,
    lambda: f64,
    upload: Option<f64>,
    requests: Vec<Request<S>>,
}

impl<S: Scalar> InstanceBuilder<S> {
    /// Starts a builder for an `m`-server network with the unit cost model.
    pub fn new(servers: usize) -> Self {
        InstanceBuilder {
            servers,
            mu: 1.0,
            lambda: 1.0,
            upload: None,
            requests: Vec::new(),
        }
    }

    /// Sets the caching rate `μ`.
    pub fn mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    /// Sets the transfer charge `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the optional upload charge `β`.
    pub fn upload(mut self, beta: f64) -> Self {
        self.upload = Some(beta);
        self
    }

    /// Appends a request at a zero-based server index.
    pub fn request(mut self, server_index: usize, time: f64) -> Self {
        self.requests.push(Request::at(server_index, time));
        self
    }

    /// Appends many `(server_index, time)` requests.
    pub fn requests<I: IntoIterator<Item = (usize, f64)>>(mut self, it: I) -> Self {
        for (s, t) in it {
            self.requests.push(Request::at(s, t));
        }
        self
    }

    /// Appends an already-typed request.
    pub fn push(mut self, r: Request<S>) -> Self {
        self.requests.push(r);
        self
    }

    /// Validates and builds the instance.
    pub fn build(self) -> Result<Instance<S>, ModelError> {
        let mut cost = CostModel::new(S::from_f64(self.mu), S::from_f64(self.lambda))?;
        if let Some(beta) = self.upload {
            cost = cost.with_upload(S::from_f64(beta));
        }
        Instance::new(self.servers, cost, self.requests)
    }
}

/// Shorthand used pervasively in tests and examples: build an `f64` instance
/// from `(server_index, time)` pairs under the unit cost model.
pub fn unit_instance(servers: usize, reqs: &[(usize, f64)]) -> Instance<f64> {
    InstanceBuilder::new(servers)
        .requests(reqs.iter().copied())
        .build()
        .expect("unit_instance called with invalid data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    #[test]
    fn builder_produces_validated_instance() {
        let inst = InstanceBuilder::<f64>::new(3)
            .mu(2.0)
            .lambda(0.5)
            .request(0, 1.0)
            .request(2, 2.0)
            .build()
            .unwrap();
        assert_eq!(inst.servers(), 3);
        assert_eq!(inst.cost().mu, 2.0);
        assert_eq!(inst.cost().lambda, 0.5);
        assert_eq!(inst.server(2), ServerId(2));
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        let err = InstanceBuilder::<f64>::new(2)
            .request(5, 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::ServerOutOfRange { .. }));
        let err = InstanceBuilder::<f64>::new(2).mu(-1.0).build().unwrap_err();
        assert!(matches!(err, ModelError::BadCostModel { .. }));
    }

    #[test]
    fn bulk_requests_and_push_compose() {
        let inst = InstanceBuilder::<f64>::new(2)
            .requests([(0, 1.0), (1, 2.0)])
            .push(Request::at(0, 3.0))
            .build()
            .unwrap();
        assert_eq!(inst.n(), 3);
    }

    #[test]
    fn unit_instance_shorthand() {
        let inst = unit_instance(4, &[(1, 0.5), (2, 0.8)]);
        assert_eq!(inst.cost().mu, 1.0);
        assert_eq!(inst.n(), 2);
    }

    #[test]
    fn upload_passes_through() {
        let inst = InstanceBuilder::<f64>::new(2)
            .upload(3.0)
            .request(0, 1.0)
            .build()
            .unwrap();
        assert_eq!(inst.cost().upload, Some(3.0));
    }
}
