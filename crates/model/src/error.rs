//! Error types for instance construction and schedule validation.

use std::fmt;

use crate::ids::ServerId;

/// Errors raised when constructing or parsing a problem [`crate::Instance`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum ModelError {
    /// The instance declares zero servers.
    NoServers,
    /// A request references a server outside `0..m`.
    ServerOutOfRange {
        request: usize,
        server: ServerId,
        servers: usize,
    },
    /// Request times must be strictly increasing and strictly positive.
    NonMonotoneTime { request: usize },
    /// `μ` and `λ` must be strictly positive and finite.
    BadCostModel { detail: &'static str },
    /// Text-format parse failure.
    Parse { line: usize, detail: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoServers => write!(f, "instance must have at least one server"),
            ModelError::ServerOutOfRange { request, server, servers } => write!(
                f,
                "request r_{request} references {server} but the instance has only {servers} servers"
            ),
            ModelError::NonMonotoneTime { request } => write!(
                f,
                "request r_{request} violates 0 < t_1 < t_2 < ... (times must be strictly increasing)"
            ),
            ModelError::BadCostModel { detail } => write!(f, "bad cost model: {detail}"),
            ModelError::Parse { line, detail } => {
                write!(f, "parse error on line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A feasibility defect found by the schedule validator.
///
/// The validator reports *all* defects it finds rather than stopping at the
/// first, which makes algorithm debugging far easier.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum Violation {
    /// A cache interval has `to < from` or negative endpoints.
    MalformedInterval {
        server: ServerId,
        from: f64,
        to: f64,
    },
    /// Two cache intervals on the same server overlap (double counting).
    OverlappingIntervals { server: ServerId, at: f64 },
    /// A cache interval starts without an incoming transfer (and is not the
    /// origin's initial interval, nor a seamless continuation).
    UnjustifiedCacheStart { server: ServerId, at: f64 },
    /// A transfer's source holds no live copy at transfer time.
    DeadTransferSource {
        src: ServerId,
        dst: ServerId,
        at: f64,
    },
    /// A request is neither covered by a cache interval on its server nor the
    /// destination of a transfer at its time.
    UnservedRequest {
        request: usize,
        server: ServerId,
        at: f64,
    },
    /// The union of cache intervals leaves `[0, t_n]` uncovered around `at`.
    CoverageGap { at: f64 },
    /// No cache interval anchors the item at the origin at time zero.
    MissingOriginCopy,
    /// Fault replay: a cache interval claims a copy through a crash of its
    /// server — the copy was actually lost at `at`, so the schedule's
    /// coverage (and its caching cost) past that instant is fictional.
    CopyLostInCrash { server: ServerId, at: f64 },
    /// Fault replay: a transfer departs a server that is down at the
    /// transfer instant.
    TransferDuringOutage { src: ServerId, at: f64 },
    /// Fault replay: a transfer crosses an active network partition — its
    /// endpoints sit on opposite sides of a partition window covering the
    /// transfer instant.
    TransferAcrossPartition {
        src: ServerId,
        dst: ServerId,
        at: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MalformedInterval { server, from, to } => {
                write!(f, "malformed cache interval H({server}, {from}, {to})")
            }
            Violation::OverlappingIntervals { server, at } => {
                write!(f, "overlapping cache intervals on {server} near t={at}")
            }
            Violation::UnjustifiedCacheStart { server, at } => {
                write!(
                    f,
                    "cache interval on {server} starts at t={at} with no incoming transfer"
                )
            }
            Violation::DeadTransferSource { src, dst, at } => {
                write!(
                    f,
                    "transfer Tr({src}, {dst}, {at}) has no live copy at the source"
                )
            }
            Violation::UnservedRequest {
                request,
                server,
                at,
            } => {
                write!(f, "request r_{request} = ({server}, {at}) is not served")
            }
            Violation::CoverageGap { at } => {
                write!(f, "no server caches the item around t={at}")
            }
            Violation::MissingOriginCopy => {
                write!(
                    f,
                    "no cache interval anchors the initial copy at the origin at t=0"
                )
            }
            Violation::CopyLostInCrash { server, at } => {
                write!(f, "copy on {server} was lost to a crash at t={at} but the schedule keeps using it")
            }
            Violation::TransferDuringOutage { src, at } => {
                write!(
                    f,
                    "transfer departs {src} at t={at} while the server is down"
                )
            }
            Violation::TransferAcrossPartition { src, dst, at } => {
                write!(
                    f,
                    "transfer Tr({src}, {dst}, {at}) crosses an active network partition"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable() {
        let e = ModelError::ServerOutOfRange {
            request: 3,
            server: ServerId(9),
            servers: 4,
        };
        assert!(e.to_string().contains("r_3"));
        assert!(e.to_string().contains("s^10"));
        let v = Violation::UnservedRequest {
            request: 2,
            server: ServerId(1),
            at: 0.8,
        };
        assert!(v.to_string().contains("r_2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::NoServers);
    }
}
