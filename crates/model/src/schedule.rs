//! Schedules: sets of cache intervals `H(s, x, y)` and transfers
//! `Tr(s_src, s_dst, t)` (Definition 1), with cost evaluation `Π(Ψ)`.

use crate::cost::CostModel;
use crate::ids::ServerId;
use crate::scalar::Scalar;

/// A cache interval `H(s, from, to)`: the item is held on `s` for
/// `[from, to]`, costing `μ·(to − from)`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CacheInterval<S> {
    /// The caching server.
    pub server: ServerId,
    /// Interval start time.
    pub from: S,
    /// Interval end time (inclusive; `to ≥ from`).
    pub to: S,
}

impl<S: Scalar> CacheInterval<S> {
    /// Convenience constructor.
    pub fn new(server: ServerId, from: S, to: S) -> Self {
        CacheInterval { server, from, to }
    }

    /// Interval length `to − from`.
    #[inline]
    pub fn len(&self) -> S {
        self.to - self.from
    }

    /// True for a degenerate `from == to` interval (these carry no cost and
    /// are dropped by [`Schedule::normalize`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        !(self.to > self.from)
    }

    /// Whether `t` lies in the closed interval.
    #[inline]
    pub fn covers(&self, t: S) -> bool {
        self.from <= t && t <= self.to
    }
}

/// A transfer `Tr(src, dst, at)`: an instantaneous copy of the item from
/// `src` to `dst` at time `at`, costing `λ`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Transfer<S> {
    /// Sending server (must hold a live copy at `at`).
    pub src: ServerId,
    /// Receiving server.
    pub dst: ServerId,
    /// Transfer instant.
    pub at: S,
}

impl<S: Scalar> Transfer<S> {
    /// Convenience constructor.
    pub fn new(src: ServerId, dst: ServerId, at: S) -> Self {
        Transfer { src, dst, at }
    }
}

/// A schedule `Ψ`: the caches and transfers that serve a request sequence.
///
/// Schedules are produced by the off-line solvers (via reconstruction) and by
/// the online executor; [`crate::validate::validate`] is the independent
/// referee that checks feasibility and re-derives the cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule<S> {
    /// Cache intervals `H(s, x, y)`.
    pub caches: Vec<CacheInterval<S>>,
    /// Transfers `Tr(src, dst, t)`.
    pub transfers: Vec<Transfer<S>>,
}

impl<S: Scalar> Schedule<S> {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule {
            caches: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// Adds a cache interval.
    pub fn cache(&mut self, server: ServerId, from: S, to: S) -> &mut Self {
        self.caches.push(CacheInterval::new(server, from, to));
        self
    }

    /// Adds a transfer.
    pub fn transfer(&mut self, src: ServerId, dst: ServerId, at: S) -> &mut Self {
        self.transfers.push(Transfer::new(src, dst, at));
        self
    }

    /// Total cost `Π(Ψ) = μ·Σ|H| + λ·|T|` under the given cost model.
    ///
    /// Assumes the schedule is normalized (no overlapping intervals on one
    /// server); [`crate::validate::validate`] checks that precondition.
    pub fn cost(&self, model: &CostModel<S>) -> S {
        let mut caching = S::ZERO;
        for h in &self.caches {
            caching = caching + model.caching(h.len());
        }
        let mut transfer = S::ZERO;
        for _ in &self.transfers {
            transfer = transfer + model.lambda;
        }
        caching + transfer
    }

    /// Caching-only portion of the cost.
    pub fn caching_cost(&self, model: &CostModel<S>) -> S {
        let mut total = S::ZERO;
        for h in &self.caches {
            total = total + model.caching(h.len());
        }
        total
    }

    /// Transfer-only portion of the cost (`λ·|T|`).
    pub fn transfer_cost(&self, model: &CostModel<S>) -> S {
        let mut total = S::ZERO;
        for _ in &self.transfers {
            total = total + model.lambda;
        }
        total
    }

    /// Sorts events, drops empty intervals and merges touching/overlapping
    /// intervals on the same server.
    ///
    /// Normalization never changes feasibility and never increases cost (it
    /// removes double counting from overlaps, which the validator would
    /// otherwise reject).
    pub fn normalize(&mut self) {
        self.caches.retain(|h| !h.is_empty());
        self.caches.sort_by(|a, b| {
            (a.server,)
                .cmp(&(b.server,))
                .then(a.from.partial_cmp(&b.from).expect("no NaN times"))
        });
        let mut merged: Vec<CacheInterval<S>> = Vec::with_capacity(self.caches.len());
        for h in self.caches.drain(..) {
            match merged.last_mut() {
                Some(last) if last.server == h.server && h.from <= last.to => {
                    last.to = last.to.max2(h.to);
                }
                _ => merged.push(h),
            }
        }
        self.caches = merged;
        self.transfers.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("no NaN times")
                .then((a.src, a.dst).cmp(&(b.src, b.dst)))
        });
    }

    /// Number of distinct live copies at time `t` (counting closed
    /// intervals).
    pub fn copies_at(&self, t: S) -> usize {
        let mut seen = vec![false; 0];
        let mut count = 0usize;
        for h in &self.caches {
            if h.covers(t) {
                let idx = h.server.index();
                if idx >= seen.len() {
                    seen.resize(idx + 1, false);
                }
                if !seen[idx] {
                    seen[idx] = true;
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> CostModel<f64> {
        CostModel::unit()
    }

    #[test]
    fn fig2_cost_split() {
        // Fig. 2: caching 1.4 + 0.2 + 1.6 = 3.2 and four transfers = 4.0.
        let mut sched = Schedule::<f64>::new();
        sched.cache(ServerId(0), 0.0, 1.4);
        sched.cache(ServerId(1), 0.5, 0.7);
        sched.cache(ServerId(2), 1.0, 2.6);
        sched.transfer(ServerId(0), ServerId(1), 0.5);
        sched.transfer(ServerId(0), ServerId(2), 1.0);
        sched.transfer(ServerId(2), ServerId(3), 1.8);
        sched.transfer(ServerId(2), ServerId(0), 2.2);
        assert!((sched.caching_cost(&unit()) - 3.2).abs() < 1e-12);
        assert_eq!(sched.transfer_cost(&unit()), 4.0);
        assert!((sched.cost(&unit()) - 7.2).abs() < 1e-12);
    }

    #[test]
    fn normalize_merges_overlaps() {
        let mut sched = Schedule::<f64>::new();
        sched.cache(ServerId(0), 0.0, 1.0);
        sched.cache(ServerId(0), 0.5, 2.0);
        sched.cache(ServerId(0), 2.0, 3.0); // touching: merged
        sched.cache(ServerId(1), 0.2, 0.2); // empty: dropped
        sched.normalize();
        assert_eq!(
            sched.caches,
            vec![CacheInterval::new(ServerId(0), 0.0, 3.0)]
        );
        assert_eq!(sched.cost(&unit()), 3.0);
    }

    #[test]
    fn normalize_keeps_disjoint_intervals_separate() {
        let mut sched = Schedule::<f64>::new();
        sched.cache(ServerId(0), 2.0, 3.0);
        sched.cache(ServerId(0), 0.0, 1.0);
        sched.cache(ServerId(1), 0.5, 0.9);
        sched.normalize();
        assert_eq!(sched.caches.len(), 3);
        assert_eq!(sched.caches[0].from, 0.0);
        assert_eq!(sched.caches[1].from, 2.0);
    }

    #[test]
    fn transfer_ordering_is_stable_by_time() {
        let mut sched = Schedule::<f64>::new();
        sched.transfer(ServerId(2), ServerId(0), 2.0);
        sched.transfer(ServerId(0), ServerId(1), 1.0);
        sched.normalize();
        assert_eq!(sched.transfers[0].at, 1.0);
        assert_eq!(sched.transfers[1].at, 2.0);
    }

    #[test]
    fn copies_at_counts_distinct_servers() {
        let mut sched = Schedule::<f64>::new();
        sched.cache(ServerId(0), 0.0, 2.0);
        sched.cache(ServerId(1), 1.0, 3.0);
        assert_eq!(sched.copies_at(0.5), 1);
        assert_eq!(sched.copies_at(1.5), 2);
        assert_eq!(sched.copies_at(2.5), 1);
        assert_eq!(sched.copies_at(9.0), 0);
    }

    #[test]
    fn interval_predicates() {
        let h = CacheInterval::new(ServerId(0), 1.0, 2.0);
        assert!(h.covers(1.0) && h.covers(2.0) && h.covers(1.5));
        assert!(!h.covers(0.99) && !h.covers(2.01));
        assert!(!h.is_empty());
        assert!(CacheInterval::new(ServerId(0), 1.0, 1.0).is_empty());
        assert_eq!(h.len(), 1.0);
    }
}
