//! The homogeneous cost model `(μ, λ)`.

use crate::error::ModelError;
use crate::scalar::Scalar;

/// Homogeneous cost model: caching costs `μ` per unit time on every server,
/// and every server-to-server transfer costs `λ` (Section III of the paper).
///
/// Replication and deletion are free; transfers are instantaneous. The
/// optional `upload` charge `β` (Table II) prices fetching the item from
/// external storage; the paper's algorithms never upload, so it defaults to
/// `None` and only the space-time graph uses it.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CostModel<S> {
    /// Caching cost per unit time per server (`μ > 0`).
    pub mu: S,
    /// Transfer cost between any pair of servers (`λ > 0`).
    pub lambda: S,
    /// Optional upload cost `β` from external storage.
    pub upload: Option<S>,
}

impl<S: Scalar> CostModel<S> {
    /// Builds a validated cost model.
    pub fn new(mu: S, lambda: S) -> Result<Self, ModelError> {
        if !(mu > S::ZERO) || !mu.is_finite() {
            return Err(ModelError::BadCostModel {
                detail: "mu must be finite and > 0",
            });
        }
        if !(lambda > S::ZERO) || !lambda.is_finite() {
            return Err(ModelError::BadCostModel {
                detail: "lambda must be finite and > 0",
            });
        }
        Ok(CostModel {
            mu,
            lambda,
            upload: None,
        })
    }

    /// The unit cost model `μ = λ = 1` used throughout the paper's examples.
    pub fn unit() -> Self {
        CostModel {
            mu: S::from_f64(1.0),
            lambda: S::from_f64(1.0),
            upload: None,
        }
    }

    /// Adds an upload charge `β`.
    pub fn with_upload(mut self, beta: S) -> Self {
        self.upload = Some(beta);
        self
    }

    /// The speculative window `Δt = λ/μ`: caching for `Δt` costs exactly one
    /// transfer, the break-even point the online algorithm pivots on.
    #[inline]
    pub fn delta_t(&self) -> S {
        self.lambda.div(self.mu)
    }

    /// Cost of caching for a duration `d` (`μ·d`).
    #[inline]
    pub fn caching(&self, d: S) -> S {
        debug_assert!(d >= S::ZERO, "negative caching duration");
        self.mu.mul(d)
    }

    /// The marginal cost bound `b = min(λ, μσ)` for a server interval `σ`
    /// (Definition 4). `σ = None` encodes the `−∞` dummy predecessor, whose
    /// bound is `λ`.
    #[inline]
    pub fn marginal_bound(&self, sigma: Option<S>) -> S {
        match sigma {
            Some(s) => self.lambda.min2(self.caching(s)),
            None => self.lambda,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Fixed;

    #[test]
    fn unit_model_delta_t_is_one() {
        let c: CostModel<f64> = CostModel::unit();
        assert_eq!(c.delta_t(), 1.0);
        assert_eq!(c.caching(2.5), 2.5);
    }

    #[test]
    fn rejects_degenerate_rates() {
        assert!(CostModel::<f64>::new(0.0, 1.0).is_err());
        assert!(CostModel::<f64>::new(1.0, 0.0).is_err());
        assert!(CostModel::<f64>::new(f64::INFINITY, 1.0).is_err());
        assert!(CostModel::<f64>::new(1.0, -2.0).is_err());
        assert!(CostModel::<f64>::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn marginal_bound_matches_definition_4() {
        let c = CostModel::<f64>::new(1.0, 1.0).unwrap();
        assert_eq!(c.marginal_bound(Some(0.4)), 0.4);
        assert_eq!(c.marginal_bound(Some(2.0)), 1.0);
        assert_eq!(c.marginal_bound(None), 1.0);
    }

    #[test]
    fn fixed_cost_model_is_exact() {
        let c = CostModel::<Fixed>::new(Fixed::from_f64(2.0), Fixed::from_f64(3.0)).unwrap();
        assert_eq!(c.delta_t(), Fixed::from_f64(1.5));
        assert_eq!(c.caching(Fixed::from_f64(0.3)), Fixed::from_f64(0.6));
        assert_eq!(
            c.marginal_bound(Some(Fixed::from_f64(10.0))),
            Fixed::from_f64(3.0)
        );
    }

    #[test]
    fn upload_is_optional() {
        let c = CostModel::<f64>::unit().with_upload(5.0);
        assert_eq!(c.upload, Some(5.0));
        assert_eq!(CostModel::<f64>::unit().upload, None);
    }
}
