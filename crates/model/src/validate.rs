//! The schedule referee: an independent feasibility checker and cost
//! re-deriver.
//!
//! Every solver in this workspace (off-line DP, naive sweep, brute force,
//! online policies) produces a [`Schedule`]; this module re-checks the
//! paper's feasibility conditions from first principles:
//!
//! 1. at least one server caches the item at every `t ∈ [t_0, t_n]`;
//! 2. the item is present at `s_i` at `t_i` for every request;
//! 3. every copy has a provenance: cache intervals start at the origin at
//!    `t = 0` or at an incoming transfer, and transfer sources hold a live
//!    copy (created strictly earlier, so copies cannot appear from nothing).
//!
//! The validator recomputes `Π(Ψ)` itself, so a solver cannot "agree with
//! itself" about a wrong cost.

use crate::error::Violation;
use crate::instance::Instance;
use crate::scalar::Scalar;
use crate::schedule::{CacheInterval, Schedule};

/// Cost breakdown returned on successful validation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ValidatedCost<S> {
    /// Total cost `Π(Ψ)`.
    pub total: S,
    /// Caching component `μ·Σ|H|`.
    pub caching: S,
    /// Transfer component `λ·|T|`.
    pub transfer: S,
}

/// Validation options.
#[derive(Copy, Clone, Debug)]
pub struct ValidateOptions {
    /// Relative/absolute tolerance used when matching event times. Zero
    /// demands exact equality (always use zero with
    /// [`crate::scalar::Fixed`]).
    pub tol: f64,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions { tol: 0.0 }
    }
}

/// Validates `sched` against `inst` with exact time matching.
pub fn validate<S: Scalar>(
    inst: &Instance<S>,
    sched: &Schedule<S>,
) -> Result<ValidatedCost<S>, Vec<Violation>> {
    validate_with(inst, sched, ValidateOptions::default())
}

/// Validates with explicit options. Returns *all* violations found.
pub fn validate_with<S: Scalar>(
    inst: &Instance<S>,
    sched: &Schedule<S>,
    opts: ValidateOptions,
) -> Result<ValidatedCost<S>, Vec<Violation>> {
    let tol = opts.tol;
    let mut violations = Vec::new();
    let eq = |a: S, b: S| a.approx_eq(b, tol);
    let le = |a: S, b: S| a <= b || a.approx_eq(b, tol);

    // --- structural checks on intervals -------------------------------
    for h in &sched.caches {
        if h.to < h.from || h.from < S::ZERO {
            violations.push(Violation::MalformedInterval {
                server: h.server,
                from: h.from.to_f64(),
                to: h.to.to_f64(),
            });
        }
    }
    if !violations.is_empty() {
        // Later checks assume well-formed intervals.
        return Err(violations);
    }

    // Per-server overlap check (sorted copies; strict interior overlap is a
    // defect because it double-counts cost).
    let mut by_server: Vec<CacheInterval<S>> = sched.caches.clone();
    by_server.sort_by(|a, b| {
        (a.server,)
            .cmp(&(b.server,))
            .then(a.from.partial_cmp(&b.from).expect("no NaN times"))
    });
    for w in by_server.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.server == b.server && b.from < a.to && !eq(b.from, a.to) {
            violations.push(Violation::OverlappingIntervals {
                server: a.server,
                at: b.from.to_f64(),
            });
        }
    }

    // --- provenance ----------------------------------------------------
    // A cache interval must start at the origin at t = 0, at an incoming
    // transfer, or seamlessly continue an earlier interval on the same
    // server (which normalize() would have merged, but we accept it).
    let has_incoming = |server, at| {
        sched
            .transfers
            .iter()
            .any(|tr| tr.dst == server && eq(tr.at, at))
    };
    for h in &sched.caches {
        let origin_start = h.server == crate::ids::ServerId::ORIGIN && eq(h.from, S::ZERO);
        let continuation = by_server.iter().any(|g| {
            g.server == h.server
                && !(g.from == h.from && g.to == h.to)
                && g.from < h.from
                && le(h.from, g.to)
        });
        if !origin_start && !continuation && !has_incoming(h.server, h.from) {
            violations.push(Violation::UnjustifiedCacheStart {
                server: h.server,
                at: h.from.to_f64(),
            });
        }
    }

    // A transfer's source must hold a live copy that existed strictly
    // before the transfer instant (no same-instant relay chains), with the
    // origin's initial copy grounding transfers at t = 0.
    for tr in &sched.transfers {
        let alive = sched.caches.iter().any(|h| {
            h.server == tr.src
                && le(h.from, tr.at)
                && le(tr.at, h.to)
                && (h.from < tr.at
                    || (h.server == crate::ids::ServerId::ORIGIN && eq(h.from, S::ZERO)))
        });
        if !alive {
            violations.push(Violation::DeadTransferSource {
                src: tr.src,
                dst: tr.dst,
                at: tr.at.to_f64(),
            });
        }
    }

    // --- service -------------------------------------------------------
    for i in 1..=inst.n() {
        let (s, t) = (inst.server(i), inst.t(i));
        let cached = sched
            .caches
            .iter()
            .any(|h| h.server == s && le(h.from, t) && le(t, h.to));
        let transferred = sched.transfers.iter().any(|tr| tr.dst == s && eq(tr.at, t));
        if !cached && !transferred {
            violations.push(Violation::UnservedRequest {
                request: i,
                server: s,
                at: t.to_f64(),
            });
        }
    }

    // --- coverage ------------------------------------------------------
    if inst.n() > 0 {
        let anchored = sched.caches.iter().any(|h| {
            h.server == crate::ids::ServerId::ORIGIN && eq(h.from, S::ZERO) && h.to > S::ZERO
        });
        if !anchored {
            violations.push(Violation::MissingOriginCopy);
        }
        let mut spans: Vec<(S, S)> = sched.caches.iter().map(|h| (h.from, h.to)).collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
        let mut reach = S::ZERO;
        let horizon = inst.horizon();
        for (from, to) in spans {
            if from > reach && !eq(from, reach) {
                if reach < horizon {
                    violations.push(Violation::CoverageGap { at: reach.to_f64() });
                }
                break;
            }
            reach = reach.max2(to);
            if reach >= horizon {
                break;
            }
        }
        if reach < horizon && !eq(reach, horizon) {
            violations.push(Violation::CoverageGap { at: reach.to_f64() });
        }
    }

    if !violations.is_empty() {
        violations.dedup_by(|a, b| a == b);
        return Err(violations);
    }

    let caching = sched.caching_cost(inst.cost());
    let transfer = sched.transfer_cost(inst.cost());
    Ok(ValidatedCost {
        total: caching + transfer,
        caching,
        transfer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    fn fig2_instance() -> Instance<f64> {
        // Requests matching the schedule in schedule.rs::fig2_cost_split.
        Instance::from_compact("m=4 mu=1 lambda=1 | s2@0.5 s3@1.0 s1@1.4 s4@1.8 s1@2.2 s3@2.6")
            .unwrap()
    }

    fn fig2_schedule() -> Schedule<f64> {
        let mut sched = Schedule::new();
        sched.cache(ServerId(0), 0.0, 1.4); // origin holds, serves s1@1.4
        sched.cache(ServerId(1), 0.5, 0.7); // via transfer, short hold
        sched.cache(ServerId(2), 1.0, 2.6); // via transfer, serves s3@1.0 & s3@2.6
        sched.transfer(ServerId(0), ServerId(1), 0.5);
        sched.transfer(ServerId(0), ServerId(2), 1.0);
        sched.transfer(ServerId(2), ServerId(3), 1.8);
        sched.transfer(ServerId(2), ServerId(0), 2.2);
        sched
    }

    #[test]
    fn accepts_feasible_schedule_and_recosts_it() {
        let got = validate(&fig2_instance(), &fig2_schedule()).unwrap();
        assert!((got.caching - 3.2).abs() < 1e-12);
        assert_eq!(got.transfer, 4.0);
        assert!((got.total - 7.2).abs() < 1e-12);
    }

    #[test]
    fn detects_unserved_request() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        sched.transfers.retain(|t| t.dst != ServerId(3));
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::UnservedRequest { request: 4, .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_dead_transfer_source() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        // Source s^2's interval ends at 0.7, transfer at 1.8 is dead.
        for t in &mut sched.transfers {
            if t.dst == ServerId(3) {
                t.src = ServerId(1);
            }
        }
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::DeadTransferSource { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_coverage_gap() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        // Shorten s^3's interval: requests s3@2.6 still "served" by nothing.
        sched.caches[2].to = 1.6;
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::CoverageGap { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_unjustified_cache_start() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        sched.cache(ServerId(3), 0.3, 0.6); // no transfer delivers this copy
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::UnjustifiedCacheStart { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_missing_origin_anchor() {
        let inst = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s2@1.0").unwrap();
        let mut sched = Schedule::new();
        // Copy materializes on s^2 with no provenance at all.
        sched.cache(ServerId(1), 1.0, 1.0);
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::MissingOriginCopy)),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_overlap_double_count() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        sched.cache(ServerId(0), 0.5, 1.0); // overlaps the origin interval
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::OverlappingIntervals { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_malformed_interval() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        sched.cache(ServerId(0), 2.0, 1.0);
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::MalformedInterval { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_same_instant_relay_chain() {
        // A -> B -> C at the same instant: B's copy did not exist strictly
        // before the hand-off, so the second hop must be reported dead.
        let inst = Instance::<f64>::from_compact("m=3 mu=1 lambda=1 | s3@1.0").unwrap();
        let mut sched = Schedule::new();
        sched.cache(ServerId(0), 0.0, 1.0);
        sched.cache(ServerId(1), 1.0, 1.0);
        sched.transfer(ServerId(0), ServerId(1), 1.0);
        sched.transfer(ServerId(1), ServerId(2), 1.0);
        let errs = validate(&inst, &sched).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::DeadTransferSource { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn empty_instance_accepts_empty_schedule() {
        let inst = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 |").unwrap();
        let got = validate(&inst, &Schedule::new()).unwrap();
        assert_eq!(got.total, 0.0);
    }

    #[test]
    fn tolerance_mode_accepts_tiny_time_skew() {
        let inst = fig2_instance();
        let mut sched = fig2_schedule();
        sched.transfers[0].at += 1e-12;
        assert!(validate(&inst, &sched).is_err());
        assert!(validate_with(&inst, &sched, ValidateOptions { tol: 1e-9 }).is_ok());
    }
}
