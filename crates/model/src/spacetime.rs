//! The space-time graph of Definition 2.
//!
//! Vertices `v_{j,i}` pair a location (`j = 0` for external storage,
//! `1..=m` for servers) with a request time index `i ∈ 0..=n`. Edges:
//!
//! * *cache edges* `(v_{j,i−1}, v_{j,i})` of weight `μ·(t_i − t_{i−1})`;
//! * *transfer edges* between the request vertex `r_i` and every other
//!   server vertex at time `i`, in both directions, of weight `λ`;
//! * *upload edges* from external storage to the request vertex, weight `β`
//!   (only when the cost model defines an upload charge).
//!
//! The graph is the analysis device behind Observations 1–2: any schedule is
//! a subgraph, and a single-request service path is a shortest path. We use
//! it for sanity checks (single-request optimum = shortest path) and for
//! rendering; the production solvers never materialize it.

use crate::instance::Instance;
use crate::scalar::Scalar;

/// Vertex handle: `(location, time-index)`, with `location = 0` meaning
/// external storage and `location = j` meaning server `s^j` (1-based to
/// mirror the paper's `v_{j,i}`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex {
    /// `0` = external storage, `1..=m` = server `s^loc`.
    pub loc: usize,
    /// Time index `0..=n`.
    pub idx: usize,
}

/// Edge kinds in the space-time graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Holding the item in place across one time step.
    Cache,
    /// Instantaneous server-to-server transfer at a request instant.
    Transfer,
    /// Upload from external storage.
    Upload,
}

/// A directed, weighted edge.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge<S> {
    /// Tail vertex.
    pub from: Vertex,
    /// Head vertex.
    pub to: Vertex,
    /// Edge weight under the instance's cost model.
    pub weight: S,
    /// Which of the paper's edge classes this edge belongs to.
    pub kind: EdgeKind,
}

/// The materialized space-time graph (adjacency lists).
#[derive(Clone, Debug)]
pub struct SpaceTimeGraph<S> {
    servers: usize,
    n: usize,
    adj: Vec<Vec<Edge<S>>>,
}

impl<S: Scalar> SpaceTimeGraph<S> {
    /// Builds the graph for an instance.
    pub fn build(inst: &Instance<S>) -> Self {
        let m = inst.servers();
        let n = inst.n();
        let mut g = SpaceTimeGraph {
            servers: m,
            n,
            adj: vec![Vec::new(); (m + 1) * (n + 1)],
        };
        // Cache edges: every location persists across each step.
        for i in 1..=n {
            let dt = inst.delta_t(i - 1, i);
            let w = inst.cost().caching(dt);
            for loc in 0..=m {
                let from = Vertex { loc, idx: i - 1 };
                let to = Vertex { loc, idx: i };
                // External storage holds for free.
                let weight = if loc == 0 { S::ZERO } else { w };
                g.push(Edge {
                    from,
                    to,
                    weight,
                    kind: EdgeKind::Cache,
                });
            }
        }
        // Transfer edges: biconnected star centred on the request vertex.
        for i in 1..=n {
            let req_loc = inst.server(i).index() + 1;
            for loc in 1..=m {
                if loc == req_loc {
                    continue;
                }
                let a = Vertex { loc, idx: i };
                let b = Vertex {
                    loc: req_loc,
                    idx: i,
                };
                g.push(Edge {
                    from: a,
                    to: b,
                    weight: inst.cost().lambda,
                    kind: EdgeKind::Transfer,
                });
                g.push(Edge {
                    from: b,
                    to: a,
                    weight: inst.cost().lambda,
                    kind: EdgeKind::Transfer,
                });
            }
            if let Some(beta) = inst.cost().upload {
                let store = Vertex { loc: 0, idx: i };
                let req = Vertex {
                    loc: req_loc,
                    idx: i,
                };
                g.push(Edge {
                    from: store,
                    to: req,
                    weight: beta,
                    kind: EdgeKind::Upload,
                });
            }
        }
        g
    }

    #[inline]
    fn vid(&self, v: Vertex) -> usize {
        debug_assert!(v.loc <= self.servers && v.idx <= self.n);
        v.loc * (self.n + 1) + v.idx
    }

    fn push(&mut self, e: Edge<S>) {
        let id = self.vid(e.from);
        self.adj[id].push(e);
    }

    /// Number of servers `m` (excluding external storage).
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of request time steps `n`.
    pub fn steps(&self) -> usize {
        self.n
    }

    /// Total vertex count `(m + 1)(n + 1)`.
    pub fn vertex_count(&self) -> usize {
        (self.servers + 1) * (self.n + 1)
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Outgoing edges of a vertex.
    pub fn edges_from(&self, v: Vertex) -> &[Edge<S>] {
        &self.adj[self.vid(v)]
    }

    /// The request vertex `r_i` (`i ≥ 1`).
    pub fn request_vertex(&self, inst: &Instance<S>, i: usize) -> Vertex {
        debug_assert!(i >= 1 && i <= self.n);
        Vertex {
            loc: inst.server(i).index() + 1,
            idx: i,
        }
    }

    /// Dijkstra shortest-path cost from `src` to `dst`.
    ///
    /// The graph is a DAG layered by time except for the bidirectional
    /// same-instant transfer stars, so a general Dijkstra keeps the code
    /// simple and obviously correct; this is a test/analysis utility, not a
    /// production path.
    pub fn shortest_path(&self, src: Vertex, dst: Vertex) -> Option<S> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Item<S>(S, usize);
        impl<S: Scalar> PartialEq for Item<S> {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl<S: Scalar> Eq for Item<S> {}
        impl<S: Scalar> PartialOrd for Item<S> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<S: Scalar> Ord for Item<S> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap.
                other.0.partial_cmp(&self.0).expect("no NaN weights")
            }
        }

        let mut dist: Vec<Option<S>> = vec![None; self.vertex_count()];
        let mut heap = BinaryHeap::new();
        dist[self.vid(src)] = Some(S::ZERO);
        heap.push(Item(S::ZERO, self.vid(src)));
        while let Some(Item(d, u)) = heap.pop() {
            if let Some(best) = dist[u] {
                if d > best {
                    continue;
                }
            }
            if u == self.vid(dst) {
                return Some(d);
            }
            for e in &self.adj[u] {
                let v = self.vid(e.to);
                let nd = d + e.weight;
                if dist[v].is_none_or(|cur| nd < cur) {
                    dist[v] = Some(nd);
                    heap.push(Item(nd, v));
                }
            }
        }
        dist[self.vid(dst)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::request::Request;

    fn tiny() -> Instance<f64> {
        Instance::from_compact("m=3 mu=1 lambda=1 | s2@0.5 s3@0.8").unwrap()
    }

    #[test]
    fn vertex_and_edge_counts_match_definition() {
        let inst = tiny();
        let g = SpaceTimeGraph::build(&inst);
        assert_eq!(g.vertex_count(), 4 * 3); // (m+1)(n+1)
                                             // Cache edges: (m+1)·n = 8. Transfer edges: 2·(m−1)·n = 8.
        assert_eq!(g.edge_count(), 8 + 8);
    }

    #[test]
    fn upload_edges_only_with_beta() {
        let inst = tiny();
        let without = SpaceTimeGraph::build(&inst);
        let with_upload = Instance::new(
            3,
            CostModel::unit().with_upload(5.0),
            inst.requests().to_vec(),
        )
        .unwrap();
        let g = SpaceTimeGraph::build(&with_upload);
        assert_eq!(g.edge_count(), without.edge_count() + 2);
    }

    #[test]
    fn single_request_shortest_path_is_hold_then_transfer() {
        // One request on s^2 at t = 0.5 with the item on s^1: the cheapest
        // service is hold on s^1 (0.5) + transfer (1.0) = 1.5, exactly the
        // C(1) value of the paper's recurrence.
        let inst = Instance::<f64>::new(2, CostModel::unit(), vec![Request::at(1, 0.5)]).unwrap();
        let g = SpaceTimeGraph::build(&inst);
        let src = Vertex { loc: 1, idx: 0 };
        let dst = g.request_vertex(&inst, 1);
        assert_eq!(g.shortest_path(src, dst), Some(1.5));
    }

    #[test]
    fn shortest_path_prefers_cheap_caching() {
        // Request on the origin itself: pure caching, no transfer.
        let inst = Instance::<f64>::new(2, CostModel::unit(), vec![Request::at(0, 0.3)]).unwrap();
        let g = SpaceTimeGraph::build(&inst);
        let src = Vertex { loc: 1, idx: 0 };
        let dst = g.request_vertex(&inst, 1);
        assert!((g.shortest_path(src, dst).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unreachable_returns_none() {
        let inst = tiny();
        let g = SpaceTimeGraph::build(&inst);
        // External storage is unreachable without upload edges... and has no
        // incoming edges at all, so going *to* it from a server fails.
        let src = Vertex { loc: 1, idx: 0 };
        let dst = Vertex { loc: 0, idx: 2 };
        assert_eq!(g.shortest_path(src, dst), None);
    }

    #[test]
    fn request_vertices_are_star_centres() {
        let inst = tiny();
        let g = SpaceTimeGraph::build(&inst);
        let r1 = g.request_vertex(&inst, 1);
        assert_eq!(r1, Vertex { loc: 2, idx: 1 });
        // The request vertex has outgoing transfer edges to every other
        // server at the same instant plus its own cache edge continuation.
        let out = g.edges_from(r1);
        let transfers = out.iter().filter(|e| e.kind == EdgeKind::Transfer).count();
        assert_eq!(transfers, 2);
    }
}
