//! A problem instance: the server set, the cost model and the request
//! sequence, with the paper's boundary conventions baked in.
//!
//! # Indexing convention
//!
//! The paper indexes requests `r_1 … r_n` and defines a boundary request
//! `r_0 = (s^1, 0)`: the item sits on the origin server at time zero. This
//! module keeps that convention: *logical* request indices are `0..=n`,
//! where index `0` is the implicit boundary request and `i ≥ 1` addresses
//! `requests[i - 1]`. All solver code in `mcc-core` uses logical indices, so
//! formulas transcribe 1:1 from the paper.

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::ids::ServerId;
use crate::request::Request;
use crate::scalar::Scalar;

/// An immutable, validated problem instance.
///
/// Construct with [`Instance::new`] (which validates) or via
/// [`crate::builder::InstanceBuilder`]. The shared item is initially located
/// at [`ServerId::ORIGIN`] (`s^1`) at time `0`, per the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance<S> {
    servers: usize,
    cost: CostModel<S>,
    requests: Vec<Request<S>>,
}

/// The validation shared by [`Instance::new`] and the in-place
/// [`InstanceBuf::rebuild`] path.
fn validate_parts<S: Scalar>(
    servers: usize,
    cost: &CostModel<S>,
    requests: &[Request<S>],
) -> Result<(), ModelError> {
    if servers == 0 {
        return Err(ModelError::NoServers);
    }
    // Re-validate the cost model in case it was built by hand.
    CostModel::new(cost.mu, cost.lambda)?;
    let mut prev = S::ZERO;
    for (k, r) in requests.iter().enumerate() {
        let i = k + 1; // logical index
        if r.server.index() >= servers {
            return Err(ModelError::ServerOutOfRange {
                request: i,
                server: r.server,
                servers,
            });
        }
        if !(r.time > prev) || !r.time.is_finite() {
            return Err(ModelError::NonMonotoneTime { request: i });
        }
        prev = r.time;
    }
    Ok(())
}

impl<S: Scalar> Instance<S> {
    /// Validates and builds an instance.
    ///
    /// Requirements: at least one server; every request's server in range;
    /// request times strictly increasing and strictly positive; a valid cost
    /// model. An empty request sequence is allowed (trivial instance).
    pub fn new(
        servers: usize,
        cost: CostModel<S>,
        requests: Vec<Request<S>>,
    ) -> Result<Self, ModelError> {
        validate_parts(servers, &cost, &requests)?;
        Ok(Instance {
            servers,
            cost,
            requests,
        })
    }

    /// Number of servers `m`.
    #[inline]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of requests `n` (excluding the boundary request `r_0`).
    #[inline]
    pub fn n(&self) -> usize {
        self.requests.len()
    }

    /// The cost model `(μ, λ)`.
    #[inline]
    pub fn cost(&self) -> &CostModel<S> {
        &self.cost
    }

    /// The raw request slice (`r_1 … r_n`, zero-based storage).
    #[inline]
    pub fn requests(&self) -> &[Request<S>] {
        &self.requests
    }

    /// Time `t_i` of logical request `i ∈ 0..=n` (`t_0 = 0`).
    #[inline]
    pub fn t(&self, i: usize) -> S {
        if i == 0 {
            S::ZERO
        } else {
            self.requests[i - 1].time
        }
    }

    /// Server `s_i` of logical request `i ∈ 0..=n` (`s_0 = s^1`).
    #[inline]
    pub fn server(&self, i: usize) -> ServerId {
        if i == 0 {
            ServerId::ORIGIN
        } else {
            self.requests[i - 1].server
        }
    }

    /// `δt_{i,j} = t_j − t_i` for logical indices `i ≤ j`.
    #[inline]
    pub fn delta_t(&self, i: usize, j: usize) -> S {
        debug_assert!(i <= j);
        self.t(j) - self.t(i)
    }

    /// The horizon `t_n` (zero when there are no requests).
    #[inline]
    pub fn horizon(&self) -> S {
        self.t(self.n())
    }

    /// Converts the instance to a different scalar type through `f64`.
    ///
    /// Exact when the target scalar can represent every value (e.g. `f64` →
    /// [`crate::scalar::Fixed`] for micro-unit-aligned inputs).
    pub fn map_scalar<T: Scalar>(&self) -> Instance<T> {
        Instance {
            servers: self.servers,
            cost: CostModel {
                mu: T::from_f64(self.cost.mu.to_f64()),
                lambda: T::from_f64(self.cost.lambda.to_f64()),
                upload: self.cost.upload.map(|b| T::from_f64(b.to_f64())),
            },
            requests: self
                .requests
                .iter()
                .map(|r| Request {
                    server: r.server,
                    time: T::from_f64(r.time.to_f64()),
                })
                .collect(),
        }
    }

    /// Compact one-line text form, e.g. `m=4 mu=1 lambda=1 | s2@0.5 s3@0.8`.
    ///
    /// Round-trips through [`Instance::from_compact`] (times rendered via
    /// `f64`, so exact for micro-unit-aligned values).
    pub fn to_compact(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "m={} mu={} lambda={}",
            self.servers,
            self.cost.mu.to_f64(),
            self.cost.lambda.to_f64()
        )
        .unwrap();
        out.push_str(" |");
        for r in &self.requests {
            write!(out, " s{}@{}", r.server.0 + 1, r.time.to_f64()).unwrap();
        }
        out
    }

    /// Parses the compact one-line text form produced by
    /// [`Instance::to_compact`]. Whitespace separated; `sJ@T` uses 1-based
    /// server labels to match the paper's `s^j`.
    pub fn from_compact(text: &str) -> Result<Self, ModelError> {
        let parse_err = |detail: String| ModelError::Parse { line: 1, detail };
        let (head, tail) = match text.split_once('|') {
            Some(parts) => parts,
            None => (text, ""),
        };
        let mut servers: Option<usize> = None;
        let mut mu: Option<f64> = None;
        let mut lambda: Option<f64> = None;
        for tok in head.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| parse_err(format!("expected key=value, got `{tok}`")))?;
            match key {
                "m" => {
                    servers = Some(
                        val.parse()
                            .map_err(|e| parse_err(format!("bad m `{val}`: {e}")))?,
                    )
                }
                "mu" => {
                    mu = Some(
                        val.parse()
                            .map_err(|e| parse_err(format!("bad mu `{val}`: {e}")))?,
                    )
                }
                "lambda" => {
                    lambda = Some(
                        val.parse()
                            .map_err(|e| parse_err(format!("bad lambda `{val}`: {e}")))?,
                    )
                }
                other => return Err(parse_err(format!("unknown key `{other}`"))),
            }
        }
        let servers = servers.ok_or_else(|| parse_err("missing m=".into()))?;
        let mu = mu.ok_or_else(|| parse_err("missing mu=".into()))?;
        let lambda = lambda.ok_or_else(|| parse_err("missing lambda=".into()))?;
        let mut requests = Vec::new();
        for tok in tail.split_whitespace() {
            let body = tok
                .strip_prefix('s')
                .ok_or_else(|| parse_err(format!("request `{tok}` must look like s2@0.5")))?;
            let (srv, time) = body
                .split_once('@')
                .ok_or_else(|| parse_err(format!("request `{tok}` must look like s2@0.5")))?;
            let label: usize = srv
                .parse()
                .map_err(|e| parse_err(format!("bad server in `{tok}`: {e}")))?;
            if label == 0 {
                return Err(parse_err(format!("server labels are 1-based in `{tok}`")));
            }
            let time: f64 = time
                .parse()
                .map_err(|e| parse_err(format!("bad time in `{tok}`: {e}")))?;
            requests.push(Request {
                server: ServerId::from_index(label - 1),
                time: S::from_f64(time),
            });
        }
        let cost = CostModel::new(S::from_f64(mu), S::from_f64(lambda))?;
        Instance::new(servers, cost, requests)
    }
}

/// Reusable instance storage: the builder-reset path for allocation-free
/// regeneration.
///
/// Workload generators in hot sweep loops produce one instance per
/// (cell, seed) unit; building each through [`Instance::new`] costs a
/// fresh request vector every time and serializes parallel sweeps on the
/// global allocator. An `InstanceBuf` owns one [`Instance`] whose request
/// storage is cleared and refilled in place — once warm (capacity at the
/// high-water mark), [`InstanceBuf::rebuild`] performs no heap
/// allocation. Validation is identical to [`Instance::new`]; a rebuild
/// that fails validation leaves the previously held instance intact.
#[derive(Clone, Debug)]
pub struct InstanceBuf<S> {
    inst: Instance<S>,
}

impl<S: Scalar> InstanceBuf<S> {
    /// An empty buffer (holds the trivial one-server instance).
    pub fn new() -> Self {
        InstanceBuf {
            inst: Instance {
                servers: 1,
                cost: CostModel::unit(),
                requests: Vec::new(),
            },
        }
    }

    /// The instance most recently committed to the buffer.
    #[inline]
    pub fn instance(&self) -> &Instance<S> {
        &self.inst
    }

    /// Rebuilds the held instance in place: clears the request storage
    /// (keeping its capacity), lets `fill` append the new requests, then
    /// validates exactly like [`Instance::new`] and commits `servers` and
    /// `cost`. On error the buffer still holds a valid (cleared) request
    /// sequence under the *previous* shape.
    pub fn rebuild<F>(
        &mut self,
        servers: usize,
        cost: CostModel<S>,
        fill: F,
    ) -> Result<&Instance<S>, ModelError>
    where
        F: FnOnce(&mut Vec<Request<S>>),
    {
        self.inst.requests.clear();
        fill(&mut self.inst.requests);
        validate_parts(servers, &cost, &self.inst.requests)?;
        self.inst.servers = servers;
        self.inst.cost = cost;
        Ok(&self.inst)
    }

    /// Parks an already-built instance in the buffer (the allocating
    /// fallback for producers without an in-place fill path).
    pub fn set(&mut self, inst: Instance<S>) -> &Instance<S> {
        self.inst = inst;
        &self.inst
    }
}

impl<S: Scalar> Default for InstanceBuf<S> {
    fn default() -> Self {
        InstanceBuf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Fixed;

    fn demo() -> Instance<f64> {
        Instance::from_compact("m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4").unwrap()
    }

    #[test]
    fn boundary_request_is_origin_at_zero() {
        let inst = demo();
        assert_eq!(inst.t(0), 0.0);
        assert_eq!(inst.server(0), ServerId::ORIGIN);
        assert_eq!(inst.n(), 4);
        assert_eq!(inst.t(4), 1.4);
        assert_eq!(inst.server(4), ServerId(0));
        assert_eq!(inst.horizon(), 1.4);
    }

    #[test]
    fn delta_t_matches_definition() {
        let inst = demo();
        assert_eq!(inst.delta_t(0, 1), 0.5);
        assert!((inst.delta_t(1, 3) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range_server() {
        let err = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s3@0.5").unwrap_err();
        assert!(matches!(
            err,
            ModelError::ServerOutOfRange { request: 1, .. }
        ));
    }

    #[test]
    fn rejects_non_monotone_times() {
        let err = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s1@1.0 s2@0.9").unwrap_err();
        assert!(matches!(err, ModelError::NonMonotoneTime { request: 2 }));
        let err = Instance::<f64>::from_compact("m=2 mu=1 lambda=1 | s1@0").unwrap_err();
        assert!(matches!(err, ModelError::NonMonotoneTime { request: 1 }));
    }

    #[test]
    fn rejects_zero_servers() {
        let err = Instance::<f64>::from_compact("m=0 mu=1 lambda=1 |").unwrap_err();
        assert!(matches!(err, ModelError::NoServers));
    }

    #[test]
    fn empty_request_sequence_is_trivial_but_valid() {
        let inst = Instance::<f64>::from_compact("m=3 mu=1 lambda=2 |").unwrap();
        assert_eq!(inst.n(), 0);
        assert_eq!(inst.horizon(), 0.0);
    }

    #[test]
    fn compact_roundtrip() {
        let inst = demo();
        let text = inst.to_compact();
        let back = Instance::<f64>::from_compact(&text).unwrap();
        assert_eq!(inst, back);
        assert_eq!(text, "m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4");
    }

    #[test]
    fn compact_parse_errors_are_descriptive() {
        for bad in [
            "mu=1 lambda=1 |",
            "m=2 lambda=1 |",
            "m=2 mu=1 |",
            "m=2 mu=1 lambda=1 | 2@0.5",
            "m=2 mu=1 lambda=1 | s2-0.5",
            "m=2 mu=1 lambda=1 | s0@0.5",
            "m=2 mu=x lambda=1 |",
            "m=2 mu=1 lambda=1 frob=3 |",
        ] {
            assert!(
                matches!(
                    Instance::<f64>::from_compact(bad),
                    Err(ModelError::Parse { .. })
                ),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn map_scalar_preserves_values() {
        let inst = demo();
        let fixed: Instance<Fixed> = inst.map_scalar();
        assert_eq!(fixed.t(1), Fixed::from_f64(0.5));
        assert_eq!(fixed.cost().lambda, Fixed::from_f64(1.0));
        let back: Instance<f64> = fixed.map_scalar();
        assert_eq!(back, inst);
    }

    #[test]
    fn json_roundtrip() {
        let inst = demo();
        let json = inst.to_json_string();
        let back = Instance::<f64>::from_json_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn instance_buf_rebuild_matches_from_scratch() {
        use crate::unit_instance;
        let mut buf = InstanceBuf::<f64>::new();
        let built = buf
            .rebuild(4, CostModel::unit(), |reqs| {
                reqs.push(Request::at(1, 0.5));
                reqs.push(Request::at(2, 0.8));
            })
            .unwrap();
        assert_eq!(built, &unit_instance(4, &[(1, 0.5), (2, 0.8)]));
        // Rebuilding with a different shape replaces the contents.
        let rebuilt = buf
            .rebuild(2, CostModel::unit(), |reqs| reqs.push(Request::at(0, 1.0)))
            .unwrap();
        assert_eq!(rebuilt.n(), 1);
        assert_eq!(rebuilt.servers(), 2);
    }

    #[test]
    fn instance_buf_rebuild_reuses_capacity() {
        let mut buf = InstanceBuf::<f64>::new();
        buf.rebuild(2, CostModel::unit(), |reqs| {
            for k in 0..64 {
                reqs.push(Request::at(k % 2, (k + 1) as f64));
            }
        })
        .unwrap();
        let cap = buf.inst.requests.capacity();
        buf.rebuild(2, CostModel::unit(), |reqs| {
            for k in 0..64 {
                reqs.push(Request::at(k % 2, (k + 1) as f64));
            }
        })
        .unwrap();
        assert_eq!(
            buf.inst.requests.capacity(),
            cap,
            "warm rebuild must not regrow"
        );
    }

    #[test]
    fn instance_buf_rebuild_validates_like_new() {
        let mut buf = InstanceBuf::<f64>::new();
        let err = buf
            .rebuild(2, CostModel::unit(), |reqs| reqs.push(Request::at(5, 1.0)))
            .unwrap_err();
        assert!(matches!(err, ModelError::ServerOutOfRange { .. }));
        let err = buf
            .rebuild(2, CostModel::unit(), |reqs| {
                reqs.push(Request::at(0, 1.0));
                reqs.push(Request::at(1, 0.5));
            })
            .unwrap_err();
        assert!(matches!(err, ModelError::NonMonotoneTime { request: 2 }));
        let err = buf.rebuild(0, CostModel::unit(), |_| {}).unwrap_err();
        assert!(matches!(err, ModelError::NoServers));
    }

    #[test]
    fn instance_buf_set_parks_an_instance() {
        let mut buf = InstanceBuf::<f64>::new();
        let inst = demo();
        assert_eq!(buf.set(inst.clone()), &inst);
        assert_eq!(buf.instance(), &inst);
    }
}
