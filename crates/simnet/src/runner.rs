//! One experiment cell: a policy set against a workload across seeds.
//!
//! Every run is replayed through the [`ScheduleAuditor`] before its result
//! is returned — feasibility checking is not an opt-in debug mode but part
//! of the measurement itself, and the per-seed finding count rides along in
//! [`SeedResult`]. Fault-injected cells additionally expand a [`FaultSpec`]
//! into a per-seed [`FaultPlan`] and (optionally) wrap the policy in the
//! fault-tolerant layer.

use mcc_core::offline::{solve_fast_in, SolverWorkspace};
use mcc_core::online::{run_policy, FaultStats, FaultTolerant, OnlinePolicy};
use mcc_workloads::Workload;

use crate::audit::ScheduleAuditor;
use crate::fault::FaultSpec;
use crate::metrics::Breakdown;

/// Factory for fresh policy instances (policies are stateful, so each run
/// gets its own). The factory must be `Sync` for the parallel sweeps.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn OnlinePolicy<f64>> + Send + Sync>;

/// Builds a policy factory from a clonable policy value.
pub fn factory<P>(proto: P) -> PolicyFactory
where
    P: OnlinePolicy<f64> + Clone + Send + Sync + 'static,
{
    Box::new(move || Box::new(proto.clone()))
}

/// What fault injection did to one seed's run.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Counters from the fault-tolerant wrapper (all zero for oblivious
    /// runs, which take no corrective action).
    pub stats: FaultStats,
    /// Crash windows in this seed's plan.
    pub crashes: usize,
    /// Whether the policy ran wrapped in the fault-tolerant layer.
    pub tolerant: bool,
}

/// One seed's measurement of one policy on one workload.
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// Seed used.
    pub seed: u64,
    /// Online policy cost (includes the retry surcharge under faults).
    pub online_cost: f64,
    /// Off-line optimum for the same trace.
    pub opt_cost: f64,
    /// Online/opt ratio.
    pub ratio: f64,
    /// Cost attribution.
    pub breakdown: Breakdown,
    /// Number of transfers performed online.
    pub transfers: usize,
    /// Auditor findings for this run (`0` = the replay came back clean).
    pub audit_findings: usize,
    /// Fault-injection outcome (`None` for fault-free cells).
    pub fault: Option<FaultOutcome>,
}

/// Measures `policy_factory()` against `workload` over `seeds`.
pub fn run_cell(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
) -> Vec<SeedResult> {
    let mut ws = SolverWorkspace::new();
    run_cell_in(policy_factory, workload, seeds, &mut ws)
}

/// [`run_cell`] reusing a caller-owned solver workspace across seeds.
///
/// The policy instance is created once and reset per seed (the executor
/// resets before every run), and the off-line optimum reuses `ws`'s
/// buffers, so the per-seed steady state allocates only what the workload
/// generator and the run record themselves need. The parallel sweep gives
/// each worker thread one workspace. Every run is audited (linear replay,
/// no fault plan) and the finding count recorded.
pub fn run_cell_in(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    ws: &mut SolverWorkspace<f64>,
) -> Vec<SeedResult> {
    let auditor = ScheduleAuditor::default();
    let mut policy = policy_factory();
    seeds
        .map(|seed| {
            let inst = workload.generate(seed);
            let run = run_policy(policy.as_mut(), &inst);
            let opt = solve_fast_in(&inst, ws).optimal_cost();
            let audit = auditor.audit_run(&inst, &run, None);
            SeedResult {
                seed,
                online_cost: run.total_cost,
                opt_cost: opt,
                ratio: if opt > 0.0 { run.total_cost / opt } else { 1.0 },
                breakdown: Breakdown::from_record(&run.record, inst.cost()),
                transfers: run.transfers(),
                audit_findings: audit.len(),
                fault: None,
            }
        })
        .collect()
}

/// Measures `policy_factory()` against `workload` over `seeds` on a
/// cluster degraded by `spec` (fresh workspace convenience wrapper).
pub fn run_cell_faulty(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    spec: &FaultSpec,
) -> Vec<SeedResult> {
    let mut ws = SolverWorkspace::new();
    run_cell_faulty_in(policy_factory, workload, seeds, spec, &mut ws)
}

/// [`run_cell_faulty`] reusing a caller-owned solver workspace.
///
/// Each seed expands `spec` into its own [`mcc_core::online::FaultPlan`]
/// (deterministic in the `(spec seed, run seed)` pair). With
/// `spec.tolerant` the policy runs wrapped in [`FaultTolerant`] and its
/// retry surcharge is folded into `online_cost`; without it the policy
/// runs oblivious and the audit replay against the plan reports every
/// violation the faults induce. The off-line optimum stays clairvoyant
/// *and* fault-free — the denominator measures what the trace costs on a
/// healthy cluster, so the ratio captures the full price of degradation.
pub fn run_cell_faulty_in(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    spec: &FaultSpec,
    ws: &mut SolverWorkspace<f64>,
) -> Vec<SeedResult> {
    let auditor = ScheduleAuditor::default();
    seeds
        .map(|seed| {
            let inst = workload.generate(seed);
            let plan = spec.plan_for(seed, inst.servers(), inst.horizon());
            let crashes = plan.crashes().len();
            let opt = solve_fast_in(&inst, ws).optimal_cost();
            let (run, stats) = if spec.tolerant {
                let mut wrapped = FaultTolerant::new(policy_factory(), plan.clone());
                let run = run_policy(&mut wrapped, &inst);
                let stats = wrapped.stats().clone();
                (run, stats)
            } else {
                let mut policy = policy_factory();
                (run_policy(policy.as_mut(), &inst), FaultStats::default())
            };
            let audit = auditor.audit_run(&inst, &run, Some(&plan));
            let online_cost = run.total_cost + stats.retry_cost;
            SeedResult {
                seed,
                online_cost,
                opt_cost: opt,
                ratio: if opt > 0.0 { online_cost / opt } else { 1.0 },
                breakdown: Breakdown::from_record(&run.record, inst.cost()),
                transfers: run.transfers(),
                audit_findings: audit.len(),
                fault: Some(FaultOutcome {
                    stats,
                    crashes,
                    tolerant: spec.tolerant,
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::SpeculativeCaching;
    use mcc_workloads::{CommonParams, PoissonWorkload};

    #[test]
    fn cell_produces_one_result_per_seed() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let results = run_cell(&f, &w, 0..5);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "online can never beat OPT: {}",
                r.ratio
            );
            assert!((r.breakdown.total() - r.online_cost).abs() < 1e-9);
            assert_eq!(r.audit_findings, 0, "fault-free SC must audit clean");
            assert!(r.fault.is_none());
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let w2 = PoissonWorkload::uniform(CommonParams::small().with_size(2, 10), 2.0);
        let f = factory(SpeculativeCaching::paper());
        let mut ws = SolverWorkspace::new();
        // Dirty the workspace on a different-shaped cell first.
        let _ = run_cell_in(&f, &w2, 0..3, &mut ws);
        let reused = run_cell_in(&f, &w1, 0..5, &mut ws);
        let fresh = run_cell(&f, &w1, 0..5);
        for (x, y) in reused.iter().zip(&fresh) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(x.transfers, y.transfers);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(3, 20), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let a = run_cell(&f, &w, 3..6);
        let b = run_cell(&f, &w, 3..6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
        }
    }

    #[test]
    fn trivial_fault_spec_matches_fault_free_cell() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let plain = run_cell(&f, &w, 0..4);
        let faulty = run_cell_faulty(&f, &w, 0..4, &FaultSpec::none());
        for (x, y) in plain.iter().zip(&faulty) {
            assert_eq!(x.online_cost, y.online_cost, "trivial plan must not perturb");
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(y.audit_findings, 0);
            let fo = y.fault.as_ref().unwrap();
            assert_eq!(fo.crashes, 0);
            assert_eq!(fo.stats, FaultStats::default());
        }
    }

    #[test]
    fn wrapped_cell_audits_clean_and_oblivious_cell_does_not() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            ..FaultSpec::default()
        };
        let wrapped = run_cell_faulty(&f, &w, 0..6, &spec);
        for r in &wrapped {
            assert_eq!(
                r.audit_findings, 0,
                "seed {}: wrapped SC must audit clean under faults",
                r.seed
            );
        }
        let crashes: usize = wrapped
            .iter()
            .map(|r| r.fault.as_ref().unwrap().crashes)
            .sum();
        assert!(crashes > 0, "the regime must actually inject crashes");

        let oblivious = run_cell_faulty(
            &f,
            &w,
            0..6,
            &FaultSpec {
                tolerant: false,
                ..spec
            },
        );
        let findings: usize = oblivious.iter().map(|r| r.audit_findings).sum();
        assert!(
            findings > 0,
            "oblivious SC must trip the auditor under a crashy plan"
        );
    }
}
