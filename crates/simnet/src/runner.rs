//! One experiment cell: a policy set against a workload across seeds.

use mcc_core::offline::{solve_fast_in, SolverWorkspace};
use mcc_core::online::{run_policy, OnlinePolicy};
use mcc_workloads::Workload;

use crate::metrics::Breakdown;

/// Factory for fresh policy instances (policies are stateful, so each run
/// gets its own). The factory must be `Sync` for the parallel sweeps.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn OnlinePolicy<f64>> + Send + Sync>;

/// Builds a policy factory from a clonable policy value.
pub fn factory<P>(proto: P) -> PolicyFactory
where
    P: OnlinePolicy<f64> + Clone + Send + Sync + 'static,
{
    Box::new(move || Box::new(proto.clone()))
}

/// One seed's measurement of one policy on one workload.
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// Seed used.
    pub seed: u64,
    /// Online policy cost.
    pub online_cost: f64,
    /// Off-line optimum for the same trace.
    pub opt_cost: f64,
    /// Online/opt ratio.
    pub ratio: f64,
    /// Cost attribution.
    pub breakdown: Breakdown,
    /// Number of transfers performed online.
    pub transfers: usize,
}

/// Measures `policy_factory()` against `workload` over `seeds`.
pub fn run_cell(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
) -> Vec<SeedResult> {
    let mut ws = SolverWorkspace::new();
    run_cell_in(policy_factory, workload, seeds, &mut ws)
}

/// [`run_cell`] reusing a caller-owned solver workspace across seeds.
///
/// The policy instance is created once and reset per seed (the executor
/// resets before every run), and the off-line optimum reuses `ws`'s
/// buffers, so the per-seed steady state allocates only what the workload
/// generator and the run record themselves need. The parallel sweep gives
/// each worker thread one workspace.
pub fn run_cell_in(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    ws: &mut SolverWorkspace<f64>,
) -> Vec<SeedResult> {
    let mut policy = policy_factory();
    seeds
        .map(|seed| {
            let inst = workload.generate(seed);
            let run = run_policy(policy.as_mut(), &inst);
            let opt = solve_fast_in(&inst, ws).optimal_cost();
            SeedResult {
                seed,
                online_cost: run.total_cost,
                opt_cost: opt,
                ratio: if opt > 0.0 { run.total_cost / opt } else { 1.0 },
                breakdown: Breakdown::from_record(&run.record, inst.cost()),
                transfers: run.transfers(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::SpeculativeCaching;
    use mcc_workloads::{CommonParams, PoissonWorkload};

    #[test]
    fn cell_produces_one_result_per_seed() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let results = run_cell(&f, &w, 0..5);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "online can never beat OPT: {}",
                r.ratio
            );
            assert!((r.breakdown.total() - r.online_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let w2 = PoissonWorkload::uniform(CommonParams::small().with_size(2, 10), 2.0);
        let f = factory(SpeculativeCaching::paper());
        let mut ws = SolverWorkspace::new();
        // Dirty the workspace on a different-shaped cell first.
        let _ = run_cell_in(&f, &w2, 0..3, &mut ws);
        let reused = run_cell_in(&f, &w1, 0..5, &mut ws);
        let fresh = run_cell(&f, &w1, 0..5);
        for (x, y) in reused.iter().zip(&fresh) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(x.transfers, y.transfers);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(3, 20), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let a = run_cell(&f, &w, 3..6);
        let b = run_cell(&f, &w, 3..6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
        }
    }
}
