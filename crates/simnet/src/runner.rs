//! One experiment cell: a policy set against a workload across seeds.
//!
//! Every run is audited before its result is returned — feasibility
//! checking is not an opt-in debug mode but part of the measurement
//! itself, and the per-seed finding count rides along in [`SeedResult`].
//! The audit happens in-stream ([`StreamingAuditor`], one chronological
//! pass over the raw run record); [`RunWorkspace::exhaustive`] switches a
//! cell to the materializing [`ScheduleAuditor`] replay, the slower
//! arbiter the streaming pass is property-tested against. Fault-injected
//! cells additionally expand a [`FaultSpec`] into a per-seed
//! [`FaultPlan`] and (optionally) wrap the policy in the fault-tolerant
//! layer.
//!
//! The steady-state seed unit ([`run_seed_in`] and friends) is
//! allocation-free: policy run, off-line optimum, fault expansion and
//! audit all work inside the caller's [`RunWorkspace`] buffers
//! (enforced by `tests/alloc_free.rs`).

use mcc_core::offline::{solve_auto_in, SolverWorkspace};
use mcc_core::online::{
    run_policy_record, FaultPlan, FaultStats, FaultTolerant, OnlinePolicy, RunRecord, Runtime,
};
use mcc_model::Instance;
use mcc_workloads::{InstanceBuf, Workload};

use crate::audit::ScheduleAuditor;
use crate::fault::{FaultSpec, PlanScratch};
use crate::metrics::Breakdown;
use crate::streaming::{AuditScratch, StreamingAuditor};

/// Factory for fresh policy instances (policies are stateful, so each run
/// gets its own). The factory must be `Sync` for the parallel sweeps.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn OnlinePolicy<f64>> + Send + Sync>;

/// Builds a policy factory from a clonable policy value.
pub fn factory<P>(proto: P) -> PolicyFactory
where
    P: OnlinePolicy<f64> + Clone + Send + Sync + 'static,
{
    Box::new(move || Box::new(proto.clone()))
}

/// Per-worker storage for the whole run pipeline: instance-generation
/// buffers, solver tables, runtime record buffers, audit scratch and
/// fault-plan buffers. With a warm workspace a whole unit — instance
/// generation included — performs no heap allocation.
///
/// The generation buffer is held apart from the per-seed scratch
/// (`SeedScratch`) so a unit can borrow the generated instance out of
/// `gen` while the rest of the workspace is mutated (disjoint field
/// borrows).
pub struct RunWorkspace {
    /// Instance-generation storage ([`Workload::generate_into`]).
    gen: InstanceBuf,
    /// Everything a seed measurement needs beyond the instance.
    run: SeedScratch,
}

/// The per-seed half of [`RunWorkspace`]: solver tables, runtime record
/// buffers, audit scratch and fault-plan buffers.
struct SeedScratch {
    solver: SolverWorkspace<f64>,
    rt: Runtime<f64>,
    audit: AuditScratch,
    plan_scratch: PlanScratch,
    /// Plan storage for oblivious fault cells (tolerant cells expand
    /// straight into the wrapper's own plan buffer).
    fault_plan: FaultPlan,
    exhaustive: bool,
}

impl RunWorkspace {
    /// A fresh workspace using the streaming auditor.
    pub fn new() -> Self {
        RunWorkspace {
            gen: InstanceBuf::new(),
            run: SeedScratch {
                solver: SolverWorkspace::new(),
                rt: Runtime::new(1),
                audit: AuditScratch::default(),
                plan_scratch: PlanScratch::default(),
                fault_plan: FaultPlan::none(),
                exhaustive: false,
            },
        }
    }

    /// A workspace that audits with the exhaustive [`ScheduleAuditor`]
    /// replay instead of the streaming pass (slower; materializes the
    /// normalized schedule per seed). Debug mode for chasing suspected
    /// streaming-audit divergences.
    pub fn exhaustive() -> Self {
        let mut ws = RunWorkspace::new();
        ws.run.exhaustive = true;
        ws
    }
}

impl Default for RunWorkspace {
    fn default() -> Self {
        RunWorkspace::new()
    }
}

/// What fault injection did to one seed's run.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Counters from the fault-tolerant wrapper (all zero for oblivious
    /// runs, which take no corrective action).
    pub stats: FaultStats,
    /// Crash windows in this seed's plan.
    pub crashes: usize,
    /// Whether the policy ran wrapped in the fault-tolerant layer.
    pub tolerant: bool,
}

/// One seed's measurement of one policy on one workload.
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// Seed used.
    pub seed: u64,
    /// Online policy cost (includes the retry surcharge under faults).
    pub online_cost: f64,
    /// Off-line optimum for the same trace.
    pub opt_cost: f64,
    /// Online/opt ratio.
    pub ratio: f64,
    /// Cost attribution.
    pub breakdown: Breakdown,
    /// Number of transfers performed online.
    pub transfers: usize,
    /// Auditor findings for this run (`0` = the audit came back clean).
    pub audit_findings: usize,
    /// Fault-injection outcome (`None` for fault-free cells).
    pub fault: Option<FaultOutcome>,
}

/// Audit dispatch: the streaming single pass, or the exhaustive replay.
fn audit_findings(
    inst: &Instance<f64>,
    rec: &RunRecord<f64>,
    reported_cost: f64,
    transfers: usize,
    plan: Option<&FaultPlan>,
    scratch: &mut AuditScratch,
    exhaustive: bool,
) -> usize {
    if exhaustive {
        ScheduleAuditor::default()
            .audit(
                inst,
                &rec.to_schedule(),
                Some(reported_cost),
                Some(transfers),
                plan,
            )
            .len()
    } else {
        StreamingAuditor::default()
            .audit_record_in(
                inst,
                rec,
                Some(reported_cost),
                Some(transfers),
                plan,
                scratch,
            )
            .len()
    }
}

/// One fault-free seed measurement on a pre-generated instance — the
/// steady-state unit of [`run_cell_in`], exposed so callers (and the
/// allocation tests) can drive it without a workload generator in the
/// loop.
pub fn run_seed_in(
    policy: &mut dyn OnlinePolicy<f64>,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut RunWorkspace,
) -> SeedResult {
    seed_core(policy, seed, inst, &mut ws.run)
}

fn seed_core(
    policy: &mut dyn OnlinePolicy<f64>,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut SeedScratch,
) -> SeedResult {
    let (stats, rec) = run_policy_record(policy, inst, &mut ws.rt);
    let findings = audit_findings(
        inst,
        rec,
        stats.total_cost,
        stats.transfers,
        None,
        &mut ws.audit,
        ws.exhaustive,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = solve_auto_in(inst, &mut ws.solver).optimal_cost();
    SeedResult {
        seed,
        online_cost: stats.total_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 {
            stats.total_cost / opt
        } else {
            1.0
        },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: None,
    }
}

/// One fault-injected seed measurement with the fault-tolerant wrapper.
///
/// The per-seed plan is expanded straight into the wrapper's plan buffer
/// (no clone); the wrapper snapshots it on reset.
pub fn run_seed_faulty_in<P: OnlinePolicy<f64>>(
    wrapped: &mut FaultTolerant<P>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut RunWorkspace,
) -> SeedResult {
    seed_faulty_core(wrapped, spec, seed, inst, &mut ws.run)
}

fn seed_faulty_core<P: OnlinePolicy<f64>>(
    wrapped: &mut FaultTolerant<P>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut SeedScratch,
) -> SeedResult {
    spec.plan_for_into(
        seed,
        inst.servers(),
        inst.horizon(),
        wrapped.plan_mut(),
        &mut ws.plan_scratch,
    );
    let crashes = wrapped.plan().crashes().len();
    let (stats, rec) = run_policy_record(wrapped, inst, &mut ws.rt);
    let fstats = wrapped.stats().clone();
    let findings = audit_findings(
        inst,
        rec,
        stats.total_cost,
        stats.transfers,
        Some(wrapped.plan()),
        &mut ws.audit,
        ws.exhaustive,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = solve_auto_in(inst, &mut ws.solver).optimal_cost();
    let online_cost = stats.total_cost + fstats.retry_cost;
    SeedResult {
        seed,
        online_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 { online_cost / opt } else { 1.0 },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: Some(FaultOutcome {
            stats: fstats,
            crashes,
            tolerant: true,
        }),
    }
}

/// One fault-injected seed measurement with an *oblivious* policy: the
/// plan is expanded into the workspace and only the audit sees it.
pub fn run_seed_oblivious_in(
    policy: &mut dyn OnlinePolicy<f64>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut RunWorkspace,
) -> SeedResult {
    seed_oblivious_core(policy, spec, seed, inst, &mut ws.run)
}

fn seed_oblivious_core(
    policy: &mut dyn OnlinePolicy<f64>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    ws: &mut SeedScratch,
) -> SeedResult {
    spec.plan_for_into(
        seed,
        inst.servers(),
        inst.horizon(),
        &mut ws.fault_plan,
        &mut ws.plan_scratch,
    );
    let crashes = ws.fault_plan.crashes().len();
    let (stats, rec) = run_policy_record(policy, inst, &mut ws.rt);
    let findings = audit_findings(
        inst,
        rec,
        stats.total_cost,
        stats.transfers,
        Some(&ws.fault_plan),
        &mut ws.audit,
        ws.exhaustive,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = solve_auto_in(inst, &mut ws.solver).optimal_cost();
    SeedResult {
        seed,
        online_cost: stats.total_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 {
            stats.total_cost / opt
        } else {
            1.0
        },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: Some(FaultOutcome {
            stats: FaultStats::default(),
            crashes,
            tolerant: false,
        }),
    }
}

/// One whole fault-free unit — instance generation *and* measurement —
/// in the caller's workspace. This is the parallel sweep's steady-state
/// body: with a warm workspace (and a generator with an in-place fill
/// path) the unit performs zero heap allocations.
pub fn run_unit_in(
    policy: &mut dyn OnlinePolicy<f64>,
    workload: &dyn Workload,
    seed: u64,
    ws: &mut RunWorkspace,
) -> SeedResult {
    let inst = workload.generate_into(seed, &mut ws.gen);
    seed_core(policy, seed, inst, &mut ws.run)
}

/// One whole fault-injected unit with the fault-tolerant wrapper
/// (generation + plan expansion + measurement, allocation-free warm).
pub fn run_unit_faulty_in<P: OnlinePolicy<f64>>(
    wrapped: &mut FaultTolerant<P>,
    spec: &FaultSpec,
    workload: &dyn Workload,
    seed: u64,
    ws: &mut RunWorkspace,
) -> SeedResult {
    let inst = workload.generate_into(seed, &mut ws.gen);
    seed_faulty_core(wrapped, spec, seed, inst, &mut ws.run)
}

/// One whole fault-injected unit with an *oblivious* policy
/// (generation + plan expansion + measurement, allocation-free warm).
pub fn run_unit_oblivious_in(
    policy: &mut dyn OnlinePolicy<f64>,
    spec: &FaultSpec,
    workload: &dyn Workload,
    seed: u64,
    ws: &mut RunWorkspace,
) -> SeedResult {
    let inst = workload.generate_into(seed, &mut ws.gen);
    seed_oblivious_core(policy, spec, seed, inst, &mut ws.run)
}

/// Measures `policy_factory()` against `workload` over `seeds`.
pub fn run_cell(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
) -> Vec<SeedResult> {
    let mut ws = RunWorkspace::new();
    run_cell_in(policy_factory, workload, seeds, &mut ws)
}

/// [`run_cell`] reusing a caller-owned [`RunWorkspace`] across seeds.
///
/// The policy instance is created once and reset per seed (the executor
/// resets before every run); instance generation, the run record, the
/// off-line optimum and the audit all reuse `ws`'s buffers, so the
/// per-seed steady state performs no heap allocation at all (for
/// generators with an in-place fill path). The parallel sweep gives each
/// worker thread one workspace.
pub fn run_cell_in(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    ws: &mut RunWorkspace,
) -> Vec<SeedResult> {
    let mut policy = policy_factory();
    seeds
        .map(|seed| run_unit_in(policy.as_mut(), workload, seed, ws))
        .collect()
}

/// Measures `policy_factory()` against `workload` over `seeds` on a
/// cluster degraded by `spec` (fresh workspace convenience wrapper).
pub fn run_cell_faulty(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    spec: &FaultSpec,
) -> Vec<SeedResult> {
    let mut ws = RunWorkspace::new();
    run_cell_faulty_in(policy_factory, workload, seeds, spec, &mut ws)
}

/// [`run_cell_faulty`] reusing a caller-owned [`RunWorkspace`].
///
/// Each seed expands `spec` into its own [`mcc_core::online::FaultPlan`]
/// (deterministic in the `(spec seed, run seed)` pair), written into
/// reusable plan buffers — no per-seed plan clone. With `spec.tolerant`
/// the policy runs wrapped in [`FaultTolerant`] and its retry surcharge
/// is folded into `online_cost`; without it the policy runs oblivious
/// and the audit against the plan reports every violation the faults
/// induce. The off-line optimum stays clairvoyant *and* fault-free — the
/// denominator measures what the trace costs on a healthy cluster, so
/// the ratio captures the full price of degradation.
pub fn run_cell_faulty_in(
    policy_factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    spec: &FaultSpec,
    ws: &mut RunWorkspace,
) -> Vec<SeedResult> {
    if spec.tolerant {
        let mut wrapped = FaultTolerant::new(policy_factory(), FaultPlan::none());
        seeds
            .map(|seed| run_unit_faulty_in(&mut wrapped, spec, workload, seed, ws))
            .collect()
    } else {
        let mut policy = policy_factory();
        seeds
            .map(|seed| run_unit_oblivious_in(policy.as_mut(), spec, workload, seed, ws))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::SpeculativeCaching;
    use mcc_workloads::{CommonParams, PoissonWorkload};

    #[test]
    fn cell_produces_one_result_per_seed() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let results = run_cell(&f, &w, 0..5);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "online can never beat OPT: {}",
                r.ratio
            );
            assert!((r.breakdown.total() - r.online_cost).abs() < 1e-9);
            assert_eq!(r.audit_findings, 0, "fault-free SC must audit clean");
            assert!(r.fault.is_none());
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let w2 = PoissonWorkload::uniform(CommonParams::small().with_size(2, 10), 2.0);
        let f = factory(SpeculativeCaching::paper());
        let mut ws = RunWorkspace::new();
        // Dirty the workspace on a different-shaped cell first.
        let _ = run_cell_in(&f, &w2, 0..3, &mut ws);
        let reused = run_cell_in(&f, &w1, 0..5, &mut ws);
        let fresh = run_cell(&f, &w1, 0..5);
        for (x, y) in reused.iter().zip(&fresh) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(x.transfers, y.transfers);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(3, 20), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let a = run_cell(&f, &w, 3..6);
        let b = run_cell(&f, &w, 3..6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
        }
    }

    #[test]
    fn exhaustive_replay_mode_matches_the_streaming_pipeline() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            tolerant: false,
            ..FaultSpec::default()
        };
        let mut fast = RunWorkspace::new();
        let mut slow = RunWorkspace::exhaustive();
        let a = run_cell_faulty_in(&f, &w, 0..6, &spec, &mut fast);
        let b = run_cell_faulty_in(&f, &w, 0..6, &spec, &mut slow);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(
                x.audit_findings, y.audit_findings,
                "seed {}: streaming and replay audits disagree",
                x.seed
            );
        }
    }

    #[test]
    fn trivial_fault_spec_matches_fault_free_cell() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let plain = run_cell(&f, &w, 0..4);
        let faulty = run_cell_faulty(&f, &w, 0..4, &FaultSpec::none());
        for (x, y) in plain.iter().zip(&faulty) {
            assert_eq!(
                x.online_cost, y.online_cost,
                "trivial plan must not perturb"
            );
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(y.audit_findings, 0);
            let fo = y.fault.as_ref().unwrap();
            assert_eq!(fo.crashes, 0);
            assert_eq!(fo.stats, FaultStats::default());
        }
    }

    #[test]
    fn wrapped_cell_audits_clean_and_oblivious_cell_does_not() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            ..FaultSpec::default()
        };
        let wrapped = run_cell_faulty(&f, &w, 0..6, &spec);
        for r in &wrapped {
            assert_eq!(
                r.audit_findings, 0,
                "seed {}: wrapped SC must audit clean under faults",
                r.seed
            );
        }
        let crashes: usize = wrapped
            .iter()
            .map(|r| r.fault.as_ref().unwrap().crashes)
            .sum();
        assert!(crashes > 0, "the regime must actually inject crashes");

        let oblivious = run_cell_faulty(
            &f,
            &w,
            0..6,
            &FaultSpec {
                tolerant: false,
                ..spec
            },
        );
        let findings: usize = oblivious.iter().map(|r| r.audit_findings).sum();
        assert!(
            findings > 0,
            "oblivious SC must trip the auditor under a crashy plan"
        );
    }
}
