//! One experiment cell: a policy set against a workload across seeds.
//!
//! The run pipeline has a single front door: [`RunRequest`]. A request
//! owns the workspace buffers, the audit mode, the fault wiring and the
//! metrics [`Sink`] in one place, and a [`RunMode`] picks the regime —
//! [`RunMode::Plain`] (healthy cluster), [`RunMode::Faulty`] (faults
//! injected, policy wrapped in the fault-tolerant layer) or
//! [`RunMode::Oblivious`] (faults injected, policy unaware; only the
//! audit sees the plan). The pre-request entry points (`run_seed_in`,
//! `run_unit_in`, `run_cell_in` and friends) are gone — every caller
//! goes through a request.
//!
//! Every run is audited before its result is returned — feasibility
//! checking is not an opt-in debug mode but part of the measurement
//! itself, and the per-seed finding count rides along in [`SeedResult`].
//! The audit happens in-stream ([`StreamingAuditor`], one chronological
//! pass over the raw run record); [`RunRequest::with_exhaustive_audit`]
//! switches a request to the materializing [`ScheduleAuditor`] replay,
//! the slower arbiter the streaming pass is property-tested against.
//! [`RunRequest::without_audit`] drops verification entirely — the
//! throughput regime for fleet-scale sweeps of tiny instances, where the
//! audit would otherwise be a third of the per-item wall time. The audit
//! is pure observation, so only `audit_findings` (reported as `0`)
//! changes; every cost, ratio and transfer count stays bit-identical.
//! Fault-injected modes expand a [`FaultSpec`] into a per-seed
//! [`FaultPlan`] and (for [`RunMode::Faulty`]) wrap the policy in the
//! fault-tolerant layer.
//!
//! The steady-state seed unit ([`RunRequest::run_unit`]) is
//! allocation-free: policy run, off-line optimum, fault expansion, audit
//! and metrics recording all work inside the request's [`RunWorkspace`]
//! buffers and the sink's preallocated cells (enforced by
//! `tests/alloc_free.rs`, including with a live
//! [`mcc_obs::Registry`] attached). Metrics never feed back into the
//! measurement: a request with a live sink produces bit-identical
//! [`SeedResult`]s to one without.

use mcc_core::offline::{solve_auto_obs_in, BatchWorkspace, SolverWorkspace};
use mcc_core::online::{
    brownout_surcharge, run_policy_record, FaultPlan, FaultStats, FaultTolerant, OnlineDecider,
    RunRecord, Runtime,
};
use mcc_model::Instance;
use mcc_obs::{Counter, Hist, Sink, Span};
use mcc_workloads::{InstanceBuf, Workload};

use crate::audit::ScheduleAuditor;
use crate::fault::{FaultSpec, PlanScratch};
use crate::metrics::Breakdown;
use crate::streaming::{AuditScratch, StreamingAuditor};

/// Factory for fresh policy instances (policies are stateful, so each run
/// gets its own). The factory must be `Sync` for the parallel sweeps.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn OnlineDecider<f64>> + Send + Sync>;

/// Builds a policy factory from a clonable policy value.
pub fn factory<P>(proto: P) -> PolicyFactory
where
    P: OnlineDecider<f64> + Clone + Send + Sync + 'static,
{
    Box::new(move || Box::new(proto.clone()))
}

/// A per-seed instance source for the batched unit path
/// ([`RunRequest::run_units_src`]). The classic source is a [`Workload`]
/// — every seed drawn from one parameter set — and the blanket impl makes
/// every workload a source unchanged. The fleet layer implements it
/// directly: there the "seed" is an *item index* and each item generates
/// under its own `(μ, λ)`, which is what makes the run pipeline
/// item-generic without a second code path.
pub trait UnitSource {
    /// Generates (or fills in place) the instance for `seed`.
    fn generate_into<'a>(&self, seed: u64, buf: &'a mut InstanceBuf) -> &'a Instance<f64>;
}

impl<W: Workload + ?Sized> UnitSource for W {
    fn generate_into<'a>(&self, seed: u64, buf: &'a mut InstanceBuf) -> &'a Instance<f64> {
        Workload::generate_into(self, seed, buf)
    }
}

/// Per-worker storage for the whole run pipeline: instance-generation
/// buffers, solver tables, runtime record buffers, audit scratch and
/// fault-plan buffers. With a warm workspace a whole unit — instance
/// generation included — performs no heap allocation.
///
/// The generation buffer is held apart from the per-seed scratch
/// (`SeedScratch`) so a unit can borrow the generated instance out of
/// `gen` while the rest of the workspace is mutated (disjoint field
/// borrows).
pub struct RunWorkspace {
    /// Instance-generation storage ([`Workload::generate_into`]).
    gen: InstanceBuf,
    /// Everything a seed measurement needs beyond the instance.
    run: SeedScratch,
    /// Per-slot generation buffers for the batched unit path — the whole
    /// chunk's instances must be alive at once so the batched solver can
    /// stage them into one SoA kernel call.
    batch_gen: Vec<InstanceBuf>,
    /// The batched off-line solver ([`mcc_core::offline::BatchWorkspace`]):
    /// one kernel pass computes every chunk instance's optimum.
    batch: BatchWorkspace<f64>,
    /// Chunk width of the batched unit path; [`BATCH_UNITS`] unless the
    /// request overrode it ([`RunRequest::with_batch_units`]).
    batch_units: usize,
}

/// Which auditor (if any) verifies each seed's run record.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum AuditRegime {
    /// The single-pass [`StreamingAuditor`] — the default; zero heap
    /// allocations once its scratch is warm.
    Streaming,
    /// The materializing [`ScheduleAuditor`] replay (debug arbiter;
    /// slower, allocates per seed).
    Exhaustive,
    /// No auditor at all: `audit_findings` is reported as `0`. The audit
    /// is pure observation, so simulation results are unaffected.
    Off,
}

/// The per-seed half of [`RunWorkspace`]: solver tables, runtime record
/// buffers, audit scratch and fault-plan buffers.
struct SeedScratch {
    solver: SolverWorkspace<f64>,
    rt: Runtime<f64>,
    audit: AuditScratch,
    plan_scratch: PlanScratch,
    /// Plan storage for oblivious fault cells (tolerant cells expand
    /// straight into the wrapper's own plan buffer).
    fault_plan: FaultPlan,
    regime: AuditRegime,
}

impl RunWorkspace {
    /// A fresh workspace using the streaming auditor.
    pub fn new() -> Self {
        RunWorkspace {
            gen: InstanceBuf::new(),
            run: SeedScratch {
                solver: SolverWorkspace::new(),
                rt: Runtime::new(1),
                audit: AuditScratch::default(),
                plan_scratch: PlanScratch::default(),
                fault_plan: FaultPlan::none(),
                regime: AuditRegime::Streaming,
            },
            batch_gen: Vec::new(),
            batch: BatchWorkspace::new(),
            batch_units: BATCH_UNITS,
        }
    }

    /// A workspace that audits with the exhaustive [`ScheduleAuditor`]
    /// replay instead of the streaming pass (slower; materializes the
    /// normalized schedule per seed). Debug mode for chasing suspected
    /// streaming-audit divergences.
    pub fn exhaustive() -> Self {
        let mut ws = RunWorkspace::new();
        ws.run.regime = AuditRegime::Exhaustive;
        ws
    }
}

impl Default for RunWorkspace {
    fn default() -> Self {
        RunWorkspace::new()
    }
}

/// The fault regime of a [`RunRequest`].
///
/// The mode — not the spec's `tolerant` flag — decides whether the policy
/// runs wrapped: [`RunMode::from_faults`] is the canonical mapping from a
/// cell's `Option<FaultSpec>`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RunMode {
    /// Healthy cluster, no fault plan at all.
    Plain,
    /// Faults injected and the policy wrapped in [`FaultTolerant`]; the
    /// wrapper's retry surcharge is folded into `online_cost`.
    Faulty(FaultSpec),
    /// Faults injected but the policy runs unaware; only the audit sees
    /// the plan and reports every violation the faults induce.
    Oblivious(FaultSpec),
}

impl RunMode {
    /// The canonical mode for a grid cell's fault column: `None` runs
    /// plain, a tolerant spec runs wrapped, a non-tolerant spec runs
    /// oblivious.
    pub fn from_faults(faults: Option<FaultSpec>) -> RunMode {
        match faults {
            None => RunMode::Plain,
            Some(spec) if spec.tolerant => RunMode::Faulty(spec),
            Some(spec) => RunMode::Oblivious(spec),
        }
    }

    /// The fault spec, if this mode injects faults.
    pub fn faults(&self) -> Option<&FaultSpec> {
        match self {
            RunMode::Plain => None,
            RunMode::Faulty(spec) | RunMode::Oblivious(spec) => Some(spec),
        }
    }
}

/// A policy instance shaped for a [`RunMode`]: plain, or behind the
/// fault-tolerant wrapper. Build one with [`RunRequest::policy`] and
/// reuse it across the seeds of a cell (the executor resets it per run);
/// rebuild it when the mode changes cells.
// One RunPolicy exists per (cell, worker), not per seed — boxing the
// tolerant arm would buy nothing but an extra indirection on the hot
// dispatch.
#[allow(clippy::large_enum_variant)]
pub enum RunPolicy {
    /// Healthy cell, or a fault cell run oblivious.
    Plain(Box<dyn OnlineDecider<f64>>),
    /// Fault cell run behind the fault-tolerant wrapper.
    Tolerant(FaultTolerant<Box<dyn OnlineDecider<f64>>>),
}

/// The run pipeline's single front door: one value owns the workspace,
/// the audit mode, the fault wiring and the metrics sink, and every
/// granularity of work — seed, unit, cell — goes through it.
///
/// ```
/// use mcc_simnet::{factory, RunMode, RunRequest};
/// use mcc_core::online::SpeculativeCaching;
/// use mcc_workloads::{CommonParams, PoissonWorkload};
///
/// let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
/// let f = factory(SpeculativeCaching::paper());
/// let mut req = RunRequest::new(RunMode::Plain);
/// let results = req.run_cell(&f, &w, 0..5);
/// assert_eq!(results.len(), 5);
/// ```
///
/// Attach a live [`mcc_obs::Registry`] with [`RunRequest::with_sink`] to
/// collect counters, phase timings and histograms; the default sink is
/// the no-op, which skips every clock read. Metrics never alter results.
pub struct RunRequest<'s> {
    mode: RunMode,
    ws: RunWorkspace,
    sink: &'s dyn Sink,
}

impl RunRequest<'static> {
    /// A request in `mode` with a fresh streaming-audit workspace and the
    /// no-op sink.
    pub fn new(mode: RunMode) -> Self {
        RunRequest::from_workspace(mode, RunWorkspace::new())
    }

    /// A request in `mode` around a caller-supplied workspace, without
    /// allocating a fresh one first ([`RunRequest::new`] followed by
    /// [`RunRequest::with_workspace`] would build and immediately drop a
    /// default workspace — a heap allocation the warm fleet path must
    /// not pay per run).
    pub fn from_workspace(mode: RunMode, ws: RunWorkspace) -> Self {
        RunRequest {
            mode,
            ws,
            sink: mcc_obs::noop(),
        }
    }
}

impl<'s> RunRequest<'s> {
    /// Attaches a metrics sink (e.g. a live [`mcc_obs::Registry`]).
    #[must_use]
    pub fn with_sink<'t>(self, sink: &'t dyn Sink) -> RunRequest<'t> {
        RunRequest {
            mode: self.mode,
            ws: self.ws,
            sink,
        }
    }

    /// Audits with the exhaustive [`ScheduleAuditor`] replay instead of
    /// the streaming pass (debug arbiter; slower, allocates per seed).
    #[must_use]
    pub fn with_exhaustive_audit(mut self) -> Self {
        self.ws.run.regime = AuditRegime::Exhaustive;
        self
    }

    /// Disables the per-seed audit entirely: no auditor runs and every
    /// [`SeedResult::audit_findings`] comes back `0`. The audit is pure
    /// observation, so all costs, ratios and transfer counts are
    /// bit-identical to an audited request — this is the throughput
    /// regime for fleet-scale sweeps of tiny instances, where
    /// verification would otherwise be a third of the per-item time.
    #[must_use]
    pub fn without_audit(mut self) -> Self {
        self.ws.run.regime = AuditRegime::Off;
        self
    }

    /// Restores the default single-pass streaming audit (e.g. on a
    /// workspace handed over from an unaudited or exhaustive request).
    #[must_use]
    pub fn with_streaming_audit(mut self) -> Self {
        self.ws.run.regime = AuditRegime::Streaming;
        self
    }

    /// Overrides the chunk width of the batched unit path (default
    /// [`BATCH_UNITS`], clamped to `1..=256`). [`BATCH_UNITS`] is sized
    /// for sweep-shaped instances (thousands of requests each, where a
    /// chunk must stay cache-resident); fleet-shaped instances of a
    /// handful of requests amortize the per-chunk staging much further —
    /// the fleet layer runs at 64. Results are bit-identical at any
    /// width (the kernel computes each instance's tables independently);
    /// only throughput and the chunk-granular metrics change.
    #[must_use]
    pub fn with_batch_units(mut self, width: usize) -> Self {
        self.ws.batch_units = width.clamp(1, 256);
        self
    }

    /// Replaces the request's workspace (e.g. to hand a warm one over).
    #[must_use]
    pub fn with_workspace(mut self, ws: RunWorkspace) -> Self {
        self.ws = ws;
        self
    }

    /// The current mode.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// Switches mode in place, keeping the warm workspace and sink — the
    /// parallel sweep does this when a worker's chunk crosses cells.
    pub fn set_mode(&mut self, mode: RunMode) {
        self.mode = mode;
    }

    /// The attached sink.
    pub fn sink(&self) -> &'s dyn Sink {
        self.sink
    }

    /// Recovers the workspace (warm buffers survive the request).
    pub fn into_workspace(self) -> RunWorkspace {
        self.ws
    }

    /// A fresh policy instance shaped for the current mode: wrapped in
    /// [`FaultTolerant`] under [`RunMode::Faulty`], plain otherwise.
    pub fn policy(&self, factory: &PolicyFactory) -> RunPolicy {
        policy_for(self.mode, factory)
    }

    /// One seed measurement on a pre-generated instance (the
    /// steady-state body of [`RunRequest::run_unit`], exposed so callers
    /// with their own instances can skip the generator).
    pub fn run_seed(
        &mut self,
        policy: &mut RunPolicy,
        seed: u64,
        inst: &Instance<f64>,
    ) -> SeedResult {
        dispatch(
            self.mode,
            policy,
            seed,
            inst,
            None,
            &mut self.ws.run,
            self.sink,
        )
    }

    /// One seed measurement against an explicit, caller-built
    /// [`FaultPlan`] instead of expanding the request's spec — the
    /// adversarial schedule search (experiment E20) evaluates perturbed
    /// plans directly through this door. A tolerant policy runs wrapped
    /// under the plan; a plain policy runs oblivious to it (the audit
    /// still sees it). The request's own mode is ignored for this seed.
    pub fn run_seed_with_plan(
        &mut self,
        policy: &mut RunPolicy,
        seed: u64,
        inst: &Instance<f64>,
        plan: &FaultPlan,
    ) -> SeedResult {
        match policy {
            RunPolicy::Tolerant(w) => {
                w.set_plan(plan);
                seed_faulty_body(w, seed, inst, None, &mut self.ws.run, self.sink)
            }
            RunPolicy::Plain(p) => {
                self.ws.run.fault_plan.copy_from(plan);
                seed_oblivious_body(p.as_mut(), seed, inst, None, &mut self.ws.run, self.sink)
            }
        }
    }

    /// One whole unit — instance generation *and* measurement — in the
    /// request's workspace. With a warm workspace (and a generator with
    /// an in-place fill path) the unit performs zero heap allocations,
    /// live sink included.
    pub fn run_unit(
        &mut self,
        policy: &mut RunPolicy,
        workload: &dyn Workload,
        seed: u64,
    ) -> SeedResult {
        unit_core(self.mode, policy, workload, seed, &mut self.ws, self.sink)
    }

    /// A whole run of consecutive units of one cell, with the off-line
    /// optima computed through the **batched** solver kernel: the seeds
    /// are processed in chunks of [`BATCH_UNITS`] — each chunk's instances
    /// are generated into per-slot buffers, staged into one SoA
    /// [`BatchWorkspace`] and solved in a single kernel pass, and only
    /// then does each seed's policy measurement run against its instance
    /// with the precomputed optimum. Results are **bit-identical** to
    /// calling [`RunRequest::run_unit`] per seed (the batched kernel
    /// computes the same `C` tables bit-for-bit; asserted by the
    /// differential proptests), appended to `out` seed-order.
    ///
    /// This is the parallel sweep's worker path: the per-instance solver
    /// setup (prescan allocation patterns, pointer-matrix builds, CSR
    /// lists) amortizes across the chunk, which is where the batched
    /// throughput win comes from. Zero heap allocations once the
    /// workspace is warm at the chunk shape, live sink included.
    pub fn run_units(
        &mut self,
        policy: &mut RunPolicy,
        workload: &dyn Workload,
        seeds: &[u64],
        out: &mut Vec<SeedResult>,
    ) {
        units_batch_core(
            self.mode,
            policy,
            workload,
            seeds,
            &mut self.ws,
            self.sink,
            out,
            |_, _| {},
        );
    }

    /// [`RunRequest::run_units`] generalized over the instance source: the
    /// same batched pipeline (BATCH_UNITS staging, one SoA kernel pass per
    /// chunk, precomputed optima) against any [`UnitSource`]. With a
    /// workload source this is bit-identical to `run_units`.
    pub fn run_units_src<Src: UnitSource + ?Sized>(
        &mut self,
        policy: &mut RunPolicy,
        source: &Src,
        seeds: &[u64],
        out: &mut Vec<SeedResult>,
    ) {
        units_batch_core(
            self.mode,
            policy,
            source,
            seeds,
            &mut self.ws,
            self.sink,
            out,
            |_, _| {},
        );
    }

    /// [`RunRequest::run_units_src`] with a per-seed observer that sees
    /// each finished seed's [`SeedResult`] together with the raw
    /// [`RunRecord`] (copy residency intervals and transfers) before the
    /// runtime is reset for the next seed. Pure observation: the record
    /// is borrowed, never cloned, and results are bit-identical with any
    /// observer. The fleet layer uses this door to harvest per-item
    /// residency intervals for the capacity sweep without a second run.
    pub fn run_units_observed<Src: UnitSource + ?Sized>(
        &mut self,
        policy: &mut RunPolicy,
        source: &Src,
        seeds: &[u64],
        out: &mut Vec<SeedResult>,
        observe: impl FnMut(&SeedResult, &RunRecord<f64>),
    ) {
        units_batch_core(
            self.mode,
            policy,
            source,
            seeds,
            &mut self.ws,
            self.sink,
            out,
            observe,
        );
    }

    /// Measures `factory()` against `workload` over `seeds`: one policy
    /// instance, reset by the executor per run; one [`SeedResult`] per
    /// seed, seed-ascending.
    pub fn run_cell(
        &mut self,
        factory: &PolicyFactory,
        workload: &dyn Workload,
        seeds: std::ops::Range<u64>,
    ) -> Vec<SeedResult> {
        cell_core(self.mode, factory, workload, seeds, &mut self.ws, self.sink)
    }
}

/// What fault injection did to one seed's run.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Counters from the fault-tolerant wrapper (all zero for oblivious
    /// runs, which take no corrective action).
    pub stats: FaultStats,
    /// Crash windows in this seed's plan.
    pub crashes: usize,
    /// Correlated burst events expanded into this seed's plan.
    pub bursts: usize,
    /// Network-partition windows in this seed's plan.
    pub partitions: usize,
    /// Brownout windows in this seed's plan.
    pub brownouts: usize,
    /// Whether the policy ran wrapped in the fault-tolerant layer.
    pub tolerant: bool,
}

/// One seed's measurement of one policy on one workload.
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// Seed used.
    pub seed: u64,
    /// Online policy cost (includes the retry surcharge under faults).
    pub online_cost: f64,
    /// Off-line optimum for the same trace.
    pub opt_cost: f64,
    /// Online/opt ratio.
    pub ratio: f64,
    /// Cost attribution.
    pub breakdown: Breakdown,
    /// Number of transfers performed online.
    pub transfers: usize,
    /// Auditor findings for this run (`0` = the audit came back clean).
    pub audit_findings: usize,
    /// Fault-injection outcome (`None` for fault-free cells).
    pub fault: Option<FaultOutcome>,
}

/// Folds the fault counters of a result slice into one [`FaultStats`]
/// with *saturating* integer arithmetic — a grid-scale fold across many
/// seeds must pin at `usize::MAX` rather than wrap (debug builds would
/// panic, release builds would silently report a tiny count). Fault-free
/// results contribute nothing.
pub fn fold_fault_stats(results: &[SeedResult]) -> FaultStats {
    let mut total = FaultStats::default();
    for fo in results.iter().filter_map(|r| r.fault.as_ref()) {
        total.copies_lost = total.copies_lost.saturating_add(fo.stats.copies_lost);
        total.retries = total.retries.saturating_add(fo.stats.retries);
        total.failovers = total.failovers.saturating_add(fo.stats.failovers);
        total.emergency_replications = total
            .emergency_replications
            .saturating_add(fo.stats.emergency_replications);
        total.adopted_replicas = total
            .adopted_replicas
            .saturating_add(fo.stats.adopted_replicas);
        total.down_serves = total.down_serves.saturating_add(fo.stats.down_serves);
        total.copy_loss_windows = total
            .copy_loss_windows
            .saturating_add(fo.stats.copy_loss_windows);
        total.deferred = total.deferred.saturating_add(fo.stats.deferred);
        total.replayed = total.replayed.saturating_add(fo.stats.replayed);
        total.dropped = total.dropped.saturating_add(fo.stats.dropped);
        // A peak is folded as the grid-wide maximum, not a sum.
        total.queue_peak = total.queue_peak.max(fo.stats.queue_peak);
        total.partition_deferrals = total
            .partition_deferrals
            .saturating_add(fo.stats.partition_deferrals);
        total.reseeds = total.reseeds.saturating_add(fo.stats.reseeds);
        total.budget_exhausted = total
            .budget_exhausted
            .saturating_add(fo.stats.budget_exhausted);
        total.retry_cost += fo.stats.retry_cost;
        total.replay_cost += fo.stats.replay_cost;
        total.reseed_cost += fo.stats.reseed_cost;
        total.brownout_cost += fo.stats.brownout_cost;
        total.backoff_wait += fo.stats.backoff_wait;
        total.total_delay += fo.stats.total_delay;
    }
    total
}

/// Audit dispatch: the streaming single pass, the exhaustive replay, or
/// nothing at all (reported as a clean run).
fn audit_findings(
    inst: &Instance<f64>,
    rec: &RunRecord<f64>,
    reported_cost: f64,
    transfers: usize,
    plan: Option<&FaultPlan>,
    scratch: &mut AuditScratch,
    regime: AuditRegime,
) -> usize {
    match regime {
        AuditRegime::Off => 0,
        AuditRegime::Exhaustive => ScheduleAuditor::default()
            .audit(
                inst,
                &rec.to_schedule(),
                Some(reported_cost),
                Some(transfers),
                plan,
            )
            .len(),
        AuditRegime::Streaming => StreamingAuditor::default()
            .audit_record_in(
                inst,
                rec,
                Some(reported_cost),
                Some(transfers),
                plan,
                scratch,
            )
            .len(),
    }
}

/// Folds one finished seed into the sink: run/request/transfer counts,
/// the λ/μ cost split, audit findings, the ratio histogram and (when
/// present) the fault outcome. Pure observation — called after the
/// [`SeedResult`] is fully built, so it cannot perturb the measurement.
fn record_seed(sink: &dyn Sink, requests: usize, r: &SeedResult) {
    sink.add(Counter::Runs, 1);
    sink.add(Counter::Requests, requests as u64);
    sink.add(Counter::Transfers, r.transfers as u64);
    sink.add(
        Counter::Extensions,
        requests.saturating_sub(r.transfers) as u64,
    );
    sink.add_cost(
        Counter::CachingCostMicros,
        r.breakdown.useful_caching + r.breakdown.speculative_tails,
    );
    sink.add_cost(Counter::TransferCostMicros, r.breakdown.transfers);
    sink.add(Counter::AuditFindings, r.audit_findings as u64);
    sink.observe(Hist::RatioCenti, (r.ratio.max(0.0) * 100.0) as u64);
    if let Some(fo) = &r.fault {
        sink.add(Counter::FaultRetries, fo.stats.retries as u64);
        sink.add(Counter::FaultFailovers, fo.stats.failovers as u64);
        sink.add(
            Counter::FaultEvacuations,
            fo.stats.emergency_replications as u64,
        );
        sink.add(Counter::FaultCopiesLost, fo.stats.copies_lost as u64);
        sink.add(Counter::FaultDownServes, fo.stats.down_serves as u64);
        sink.add(
            Counter::FaultAdoptedReplicas,
            fo.stats.adopted_replicas as u64,
        );
        sink.add(Counter::FaultCrashWindows, fo.crashes as u64);
        sink.add(Counter::FaultBurstWindows, fo.bursts as u64);
        sink.add(Counter::FaultPartitionWindows, fo.partitions as u64);
        sink.add(Counter::FaultBrownoutWindows, fo.brownouts as u64);
        sink.add(Counter::FaultDeferred, fo.stats.deferred as u64);
        sink.add(Counter::FaultReplayed, fo.stats.replayed as u64);
        sink.add(Counter::FaultDropped, fo.stats.dropped as u64);
        sink.add(
            Counter::FaultPartitionDeferrals,
            fo.stats.partition_deferrals as u64,
        );
        sink.add(Counter::FaultReseeds, fo.stats.reseeds as u64);
        sink.add(
            Counter::FaultBudgetExhausted,
            fo.stats.budget_exhausted as u64,
        );
        sink.add_cost(Counter::FaultRetryCostMicros, fo.stats.retry_cost);
        sink.add_cost(Counter::FaultReplayCostMicros, fo.stats.replay_cost);
        sink.add_cost(Counter::FaultReseedCostMicros, fo.stats.reseed_cost);
        sink.add_cost(Counter::FaultBrownoutCostMicros, fo.stats.brownout_cost);
        sink.observe(Hist::FaultQueuePeak, fo.stats.queue_peak as u64);
        sink.observe(
            Hist::FaultBackoffWaitMicros,
            (fo.stats.backoff_wait.max(0.0) * 1e6) as u64,
        );
    }
}

/// Builds the [`RunPolicy`] variant `mode` calls for.
fn policy_for(mode: RunMode, factory: &PolicyFactory) -> RunPolicy {
    match mode {
        RunMode::Faulty(_) => RunPolicy::Tolerant(FaultTolerant::new(factory(), FaultPlan::none())),
        RunMode::Plain | RunMode::Oblivious(_) => RunPolicy::Plain(factory()),
    }
}

/// Mode × policy dispatch onto the three seed cores. A policy built by
/// [`policy_for`] for the same mode always hits one of the first three
/// arms; the mismatch arms (a policy reused across a mode switch without
/// rebuilding) run the policy as-is under the requested regime, clearing
/// a tolerant wrapper's stale plan first so it cannot act on a previous
/// cell's crashes.
fn dispatch(
    mode: RunMode,
    policy: &mut RunPolicy,
    seed: u64,
    inst: &Instance<f64>,
    opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    match (mode, policy) {
        (RunMode::Plain, RunPolicy::Plain(p)) => seed_core(p.as_mut(), seed, inst, opt, ws, sink),
        (RunMode::Faulty(spec), RunPolicy::Tolerant(w)) => {
            seed_faulty_core(w, &spec, seed, inst, opt, ws, sink)
        }
        (RunMode::Oblivious(spec), RunPolicy::Plain(p)) => {
            seed_oblivious_core(p.as_mut(), &spec, seed, inst, opt, ws, sink)
        }
        (RunMode::Plain, RunPolicy::Tolerant(w)) => {
            *w.plan_mut() = FaultPlan::none();
            seed_core(w, seed, inst, opt, ws, sink)
        }
        (RunMode::Oblivious(spec), RunPolicy::Tolerant(w)) => {
            *w.plan_mut() = FaultPlan::none();
            seed_oblivious_core(w, &spec, seed, inst, opt, ws, sink)
        }
        (RunMode::Faulty(spec), RunPolicy::Plain(p)) => {
            seed_oblivious_core(p.as_mut(), &spec, seed, inst, opt, ws, sink)
        }
    }
}

/// The off-line optimum for a seed: the precomputed batch-kernel value
/// when the caller staged one, otherwise a fresh auto-dispatched solve.
/// The two are bit-identical (the batched kernel computes the same `C`
/// tables bit-for-bit), so which path produced the number is
/// unobservable in the results — only in the metrics.
fn opt_cost_for(
    inst: &Instance<f64>,
    precomputed: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> f64 {
    match precomputed {
        Some(opt) => opt,
        None => solve_auto_obs_in(inst, &mut ws.solver, sink).optimal_cost(),
    }
}

/// One whole unit (generation + measurement) against `ws`, with the unit
/// wall time observed into [`Hist::UnitNanos`] when the sink wants
/// clocks.
fn unit_core(
    mode: RunMode,
    policy: &mut RunPolicy,
    workload: &dyn Workload,
    seed: u64,
    ws: &mut RunWorkspace,
    sink: &dyn Sink,
) -> SeedResult {
    let t0 = sink.enabled().then(std::time::Instant::now);
    let inst = workload.generate_into(seed, &mut ws.gen);
    let result = dispatch(mode, policy, seed, inst, None, &mut ws.run, sink);
    if let Some(t0) = t0 {
        sink.observe(
            Hist::UnitNanos,
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
    result
}

/// Chunk width of the batched unit path ([`RunRequest::run_units`]): how
/// many instances are staged into one batched-solver kernel call. Large
/// enough to amortize per-instance setup, small enough that a chunk's
/// instances (all alive at once) stay cache-resident at sweep shapes.
pub const BATCH_UNITS: usize = 8;

/// The batched unit path: generation and the off-line optima run chunked
/// through the SoA batch kernel, then each seed's policy measurement runs
/// with its precomputed optimum. One [`Hist::UnitNanos`] observation per
/// seed (covering the measurement half; the shared staging + kernel time
/// lands in the batch counters), so a sweep's unit accounting is
/// unchanged.
#[allow(clippy::too_many_arguments)] // private core; the public doors curry it
fn units_batch_core<Src: UnitSource + ?Sized>(
    mode: RunMode,
    policy: &mut RunPolicy,
    source: &Src,
    seeds: &[u64],
    ws: &mut RunWorkspace,
    sink: &dyn Sink,
    out: &mut Vec<SeedResult>,
    mut observe: impl FnMut(&SeedResult, &RunRecord<f64>),
) {
    for chunk in seeds.chunks(ws.batch_units) {
        if ws.batch_gen.len() < chunk.len() {
            ws.batch_gen.resize_with(chunk.len(), InstanceBuf::new);
        }
        ws.batch.clear();
        {
            let _stage = Span::start(sink, Counter::SolveBatchStageNanos);
            for (slot, &seed) in ws.batch_gen.iter_mut().zip(chunk) {
                let inst = source.generate_into(seed, slot);
                ws.batch.push(inst);
            }
        }
        ws.batch.solve_obs(sink);
        for (j, &seed) in chunk.iter().enumerate() {
            let t0 = sink.enabled().then(std::time::Instant::now);
            let opt = ws.batch.optimal_cost(j);
            let inst = ws.batch_gen[j].instance();
            let result = dispatch(mode, policy, seed, inst, Some(opt), &mut ws.run, sink);
            if let Some(t0) = t0 {
                sink.observe(
                    Hist::UnitNanos,
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            observe(&result, ws.run.rt.record());
            out.push(result);
        }
    }
}

/// One cell (one policy instance, reset per run, over a seed range)
/// against `ws`.
fn cell_core(
    mode: RunMode,
    factory: &PolicyFactory,
    workload: &dyn Workload,
    seeds: std::ops::Range<u64>,
    ws: &mut RunWorkspace,
    sink: &dyn Sink,
) -> Vec<SeedResult> {
    let mut policy = policy_for(mode, factory);
    seeds
        .map(|seed| unit_core(mode, &mut policy, workload, seed, ws, sink))
        .collect()
}

fn seed_core(
    policy: &mut dyn OnlineDecider<f64>,
    seed: u64,
    inst: &Instance<f64>,
    precomputed_opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    let (stats, rec) = run_policy_record(policy, inst, &mut ws.rt);
    let findings = audit_findings(
        inst,
        rec,
        stats.total_cost,
        stats.transfers,
        None,
        &mut ws.audit,
        ws.regime,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = opt_cost_for(inst, precomputed_opt, ws, sink);
    let result = SeedResult {
        seed,
        online_cost: stats.total_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 {
            stats.total_cost / opt
        } else {
            1.0
        },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: None,
    };
    record_seed(sink, inst.n(), &result);
    result
}

fn seed_faulty_core<P: OnlineDecider<f64>>(
    wrapped: &mut FaultTolerant<P>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    precomputed_opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    spec.plan_for_into(
        seed,
        inst.servers(),
        inst.horizon(),
        wrapped.plan_mut(),
        &mut ws.plan_scratch,
    );
    seed_faulty_body(wrapped, seed, inst, precomputed_opt, ws, sink)
}

/// The wrapped measurement once the plan sits in the wrapper: run, charge
/// the brownout surcharge against the finished record geometry, audit
/// against the surcharged cost, and fold every wrapper surcharge
/// (retries, replays, reseeds, brownouts) into `online_cost` so the ratio
/// prices the whole degradation.
fn seed_faulty_body<P: OnlineDecider<f64>>(
    wrapped: &mut FaultTolerant<P>,
    seed: u64,
    inst: &Instance<f64>,
    precomputed_opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    let crashes = wrapped.plan().crashes().len();
    let bursts = wrapped.plan().bursts() as usize;
    let partitions = wrapped.plan().partitions().len();
    let brownouts = wrapped.plan().brownouts().len();
    let (stats, rec) = run_policy_record(wrapped, inst, &mut ws.rt);
    let sur = brownout_surcharge(wrapped.plan(), rec, inst.cost());
    wrapped.stats_mut().brownout_cost = sur;
    let fstats = wrapped.stats().clone();
    let findings = audit_findings(
        inst,
        rec,
        stats.total_cost + sur,
        stats.transfers,
        Some(wrapped.plan()),
        &mut ws.audit,
        ws.regime,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = opt_cost_for(inst, precomputed_opt, ws, sink);
    let online_cost =
        stats.total_cost + sur + fstats.retry_cost + fstats.replay_cost + fstats.reseed_cost;
    let result = SeedResult {
        seed,
        online_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 { online_cost / opt } else { 1.0 },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: Some(FaultOutcome {
            stats: fstats,
            crashes,
            bursts,
            partitions,
            brownouts,
            tolerant: true,
        }),
    };
    record_seed(sink, inst.n(), &result);
    result
}

fn seed_oblivious_core(
    policy: &mut dyn OnlineDecider<f64>,
    spec: &FaultSpec,
    seed: u64,
    inst: &Instance<f64>,
    precomputed_opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    spec.plan_for_into(
        seed,
        inst.servers(),
        inst.horizon(),
        &mut ws.fault_plan,
        &mut ws.plan_scratch,
    );
    seed_oblivious_body(policy, seed, inst, precomputed_opt, ws, sink)
}

/// The oblivious measurement once the plan sits in `ws.fault_plan`. The
/// brownout surcharge still applies — degraded bandwidth taxes the run
/// whether or not the policy knows about it — so both the audited and the
/// reported cost carry it.
fn seed_oblivious_body(
    policy: &mut dyn OnlineDecider<f64>,
    seed: u64,
    inst: &Instance<f64>,
    precomputed_opt: Option<f64>,
    ws: &mut SeedScratch,
    sink: &dyn Sink,
) -> SeedResult {
    let crashes = ws.fault_plan.crashes().len();
    let bursts = ws.fault_plan.bursts() as usize;
    let partitions = ws.fault_plan.partitions().len();
    let brownouts = ws.fault_plan.brownouts().len();
    let (stats, rec) = run_policy_record(policy, inst, &mut ws.rt);
    let sur = brownout_surcharge(&ws.fault_plan, rec, inst.cost());
    let online_cost = stats.total_cost + sur;
    let findings = audit_findings(
        inst,
        rec,
        online_cost,
        stats.transfers,
        Some(&ws.fault_plan),
        &mut ws.audit,
        ws.regime,
    );
    let breakdown = Breakdown::from_record(rec, inst.cost());
    let opt = opt_cost_for(inst, precomputed_opt, ws, sink);
    let fstats = FaultStats {
        brownout_cost: sur,
        ..FaultStats::default()
    };
    let result = SeedResult {
        seed,
        online_cost,
        opt_cost: opt,
        ratio: if opt > 0.0 { online_cost / opt } else { 1.0 },
        breakdown,
        transfers: stats.transfers,
        audit_findings: findings,
        fault: Some(FaultOutcome {
            stats: fstats,
            crashes,
            bursts,
            partitions,
            brownouts,
            tolerant: false,
        }),
    };
    record_seed(sink, inst.n(), &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::SpeculativeCaching;
    use mcc_obs::Registry;
    use mcc_workloads::{CommonParams, PoissonWorkload};

    #[test]
    fn cell_produces_one_result_per_seed() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let results = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 0..5);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "online can never beat OPT: {}",
                r.ratio
            );
            assert!((r.breakdown.total() - r.online_cost).abs() < 1e-9);
            assert_eq!(r.audit_findings, 0, "fault-free SC must audit clean");
            assert!(r.fault.is_none());
        }
    }

    #[test]
    fn request_reuse_across_cells_matches_fresh_requests() {
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let w2 = PoissonWorkload::uniform(CommonParams::small().with_size(2, 10), 2.0);
        let f = factory(SpeculativeCaching::paper());
        let mut req = RunRequest::new(RunMode::Plain);
        // Dirty the workspace on a different-shaped cell first.
        let _ = req.run_cell(&f, &w2, 0..3);
        let reused = req.run_cell(&f, &w1, 0..5);
        let fresh = RunRequest::new(RunMode::Plain).run_cell(&f, &w1, 0..5);
        for (x, y) in reused.iter().zip(&fresh) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(x.transfers, y.transfers);
        }
    }

    #[test]
    fn live_sink_does_not_perturb_results_and_counts_runs() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let silent = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 0..5);
        let reg = Registry::new();
        let observed = RunRequest::new(RunMode::Plain)
            .with_sink(&reg)
            .run_cell(&f, &w, 0..5);
        for (x, y) in silent.iter().zip(&observed) {
            assert_eq!(x.online_cost, y.online_cost, "metrics must never feed back");
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(x.audit_findings, y.audit_findings);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::Runs), 5);
        assert_eq!(snap.counter(Counter::Requests), 5 * 30);
        let transfers: usize = observed.iter().map(|r| r.transfers).sum();
        assert_eq!(snap.counter(Counter::Transfers), transfers as u64);
        assert_eq!(
            snap.counter(Counter::SolveMatrixDispatches)
                + snap.counter(Counter::SolveSweepDispatches),
            5,
            "every seed runs exactly one auto-dispatched solve"
        );
        assert_eq!(snap.hist(Hist::UnitNanos).count, 5);
        assert_eq!(snap.hist(Hist::RatioCenti).count, 5);
        assert!(snap.counter(Counter::SolveNanos) > 0, "spans must record");
        // The λ/μ split covers the whole online cost (micro-unit rounding
        // loses < 1 micro-unit per seed).
        let total_micros: u64 =
            snap.counter(Counter::CachingCostMicros) + snap.counter(Counter::TransferCostMicros);
        let expect: f64 = observed.iter().map(|r| r.online_cost).sum::<f64>() * 1e6;
        assert!((total_micros as f64 - expect).abs() <= 5.0 + expect * 1e-9);
    }

    #[test]
    fn faulty_mode_records_fault_counters() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            ..FaultSpec::default()
        };
        let reg = Registry::new();
        let results = RunRequest::new(RunMode::Faulty(spec))
            .with_sink(&reg)
            .run_cell(&f, &w, 0..6);
        let snap = reg.snapshot();
        let crashes: usize = results
            .iter()
            .filter_map(|r| r.fault.as_ref())
            .map(|fo| fo.crashes)
            .sum();
        assert!(crashes > 0, "the regime must actually inject crashes");
        assert_eq!(snap.counter(Counter::FaultCrashWindows), crashes as u64);
        let folded = fold_fault_stats(&results);
        assert_eq!(snap.counter(Counter::FaultRetries), folded.retries as u64);
        assert_eq!(
            snap.counter(Counter::FaultFailovers),
            folded.failovers as u64
        );
    }

    #[test]
    fn fold_fault_stats_saturates_instead_of_wrapping() {
        // Regression: the fold across a grid of seeds must pin at
        // usize::MAX, not wrap (debug builds used to panic on `+`).
        let huge = FaultStats {
            retries: usize::MAX - 1,
            failovers: usize::MAX / 2 + 1,
            copies_lost: usize::MAX,
            ..FaultStats::default()
        };
        let mk = |stats: FaultStats| SeedResult {
            seed: 0,
            online_cost: 1.0,
            opt_cost: 1.0,
            ratio: 1.0,
            breakdown: Breakdown::default(),
            transfers: 0,
            audit_findings: 0,
            fault: Some(FaultOutcome {
                stats,
                crashes: 0,
                bursts: 0,
                partitions: 0,
                brownouts: 0,
                tolerant: true,
            }),
        };
        let results = vec![mk(huge.clone()), mk(huge)];
        let total = fold_fault_stats(&results);
        assert_eq!(total.retries, usize::MAX);
        assert_eq!(total.failovers, usize::MAX);
        assert_eq!(total.copies_lost, usize::MAX);
        assert_eq!(total.down_serves, 0, "untouched fields stay zero");
    }

    #[test]
    fn results_are_deterministic() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(3, 20), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let a = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 3..6);
        let b = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 3..6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
        }
    }

    #[test]
    fn exhaustive_replay_mode_matches_the_streaming_pipeline() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            tolerant: false,
            ..FaultSpec::default()
        };
        let mode = RunMode::from_faults(Some(spec));
        assert!(matches!(mode, RunMode::Oblivious(_)));
        let a = RunRequest::new(mode).run_cell(&f, &w, 0..6);
        let b = RunRequest::new(mode)
            .with_exhaustive_audit()
            .run_cell(&f, &w, 0..6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.online_cost, y.online_cost);
            assert_eq!(x.opt_cost, y.opt_cost);
            assert_eq!(
                x.audit_findings, y.audit_findings,
                "seed {}: streaming and replay audits disagree",
                x.seed
            );
        }
    }

    #[test]
    fn trivial_fault_spec_matches_fault_free_cell() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let plain = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 0..4);
        let faulty =
            RunRequest::new(RunMode::from_faults(Some(FaultSpec::none()))).run_cell(&f, &w, 0..4);
        for (x, y) in plain.iter().zip(&faulty) {
            assert_eq!(
                x.online_cost, y.online_cost,
                "trivial plan must not perturb"
            );
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(y.audit_findings, 0);
            let fo = y.fault.as_ref().unwrap();
            assert_eq!(fo.crashes, 0);
            assert_eq!(fo.stats, FaultStats::default());
        }
    }

    #[test]
    fn wrapped_cell_audits_clean_and_oblivious_cell_does_not() {
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 60), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 7,
            crash_rate: 0.4,
            mean_downtime: 2.0,
            ..FaultSpec::default()
        };
        let wrapped = RunRequest::new(RunMode::Faulty(spec)).run_cell(&f, &w, 0..6);
        for r in &wrapped {
            assert_eq!(
                r.audit_findings, 0,
                "seed {}: wrapped SC must audit clean under faults",
                r.seed
            );
        }
        let crashes: usize = wrapped
            .iter()
            .map(|r| r.fault.as_ref().unwrap().crashes)
            .sum();
        assert!(crashes > 0, "the regime must actually inject crashes");

        let oblivious = RunRequest::new(RunMode::Oblivious(spec)).run_cell(&f, &w, 0..6);
        let findings: usize = oblivious.iter().map(|r| r.audit_findings).sum();
        assert!(
            findings > 0,
            "oblivious SC must trip the auditor under a crashy plan"
        );
    }

    #[test]
    fn run_seed_with_plan_matches_spec_expansion() {
        // The explicit-plan door must be bit-identical to the spec path
        // when handed the very plan the spec would expand.
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 3,
            crash_rate: 0.3,
            mean_downtime: 1.5,
            ..FaultSpec::default()
        };
        let via_spec = RunRequest::new(RunMode::Faulty(spec)).run_cell(&f, &w, 0..4);
        let mut req = RunRequest::new(RunMode::Faulty(spec));
        let mut policy = req.policy(&f);
        let mut scratch = PlanScratch::default();
        let mut plan = FaultPlan::none();
        let mut gen = mcc_workloads::InstanceBuf::new();
        for r in &via_spec {
            let inst = Workload::generate_into(&w, r.seed, &mut gen);
            spec.plan_for_into(
                r.seed,
                inst.servers(),
                inst.horizon(),
                &mut plan,
                &mut scratch,
            );
            let x = req.run_seed_with_plan(&mut policy, r.seed, inst, &plan);
            assert_eq!(x.online_cost, r.online_cost, "seed {}", r.seed);
            assert_eq!(x.opt_cost, r.opt_cost);
            assert_eq!(x.audit_findings, r.audit_findings);
        }
    }

    #[test]
    fn mode_mismatch_arms_still_run_sensibly() {
        // A policy built for one mode but run under another (the sweep
        // never does this; the API tolerates it): results must match the
        // policy's actual wrapping, not crash.
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(4, 30), 1.0);
        let f = factory(SpeculativeCaching::paper());
        let spec = FaultSpec {
            seed: 5,
            crash_rate: 0.3,
            mean_downtime: 1.5,
            ..FaultSpec::default()
        };
        let mut req = RunRequest::new(RunMode::Faulty(spec));
        let mut plain_policy = RunRequest::new(RunMode::Plain).policy(&f);
        let mut tolerant_policy = req.policy(&f);
        // Faulty mode + plain policy degrades to an oblivious run.
        let a = req.run_unit(&mut plain_policy, &w, 0);
        assert!(matches!(
            a.fault,
            Some(FaultOutcome {
                tolerant: false,
                ..
            })
        ));
        // Plain mode + tolerant policy clears the stale plan and runs clean.
        req.set_mode(RunMode::Plain);
        let b = req.run_unit(&mut tolerant_policy, &w, 0);
        assert!(b.fault.is_none());
        assert_eq!(b.audit_findings, 0);
        let clean = RunRequest::new(RunMode::Plain).run_cell(&f, &w, 0..1);
        assert_eq!(b.online_cost, clean[0].online_cost);
    }
}
