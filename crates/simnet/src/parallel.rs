//! Parallel sweep execution over (policy × workload × seed) grids.
//!
//! Simulation cells are embarrassingly parallel and fully deterministic
//! per seed, so the sweep shards the grid over a fixed thread count with
//! scoped threads and reassembles results in grid order — results are
//! bit-identical regardless of thread count (asserted in the tests), which
//! is what makes the scaling bench meaningful. Fault-injected cells
//! stay deterministic too: each seed expands its [`FaultSpec`] into the
//! same plan no matter which worker runs it.
//!
//! # Architecture (DESIGN.md §7)
//!
//! The sweep is built around **lock-free disjoint ownership**: there is
//! no shared mutable result storage at all while workers run.
//!
//! * **Chunked work dispatch.** Units (one `(cell, seed)` pair each) are
//!   numbered `0..units` in grid order; a single atomic counter hands
//!   out *chunks* of consecutive units (`max(1, units/threads/8)` per
//!   grab) so the counter is touched ~8 times per worker instead of once
//!   per unit, while the tail still load-balances at fine granularity.
//! * **Per-worker result shards.** Each worker appends
//!   `(unit, SeedResult)` pairs to a private vector it owns outright and
//!   returns it through its join handle; after the scope joins, the
//!   shards are scattered into grid order. No mutex, no slot sharing,
//!   no write ever crosses a thread while the sweep runs.
//! * **Zero steady-state allocation.** Each worker reuses one
//!   [`RunWorkspace`](crate::RunWorkspace) (instance generation
//!   included, via
//!   [`mcc_workloads::Workload::generate_into`]) and keeps the current
//!   cell's policy instance alive across consecutive units of the same
//!   cell (the executor resets it per run), so the global allocator —
//!   the classic serializer of data-parallel eval loops — stays out of
//!   the hot path.
//!
//! Determinism survives all of this because a unit's result depends only
//! on its `(cell, seed)` pair: workspaces are reset per run, policies are
//! reset per run, and fault plans are expanded per seed from the spec —
//! never from worker state. Which worker ran a unit, and in which order,
//! is unobservable in the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use mcc_core::online::FaultStats;
use mcc_obs::{Counter, Gauge, Hist, Sink};
use mcc_workloads::Workload;

use crate::fault::FaultSpec;
use crate::runner::{fold_fault_stats, PolicyFactory, RunMode, RunPolicy, RunRequest, SeedResult};

/// A named cell of the sweep grid.
pub struct GridCell<'a> {
    /// Policy label (factories don't carry names).
    pub policy_name: String,
    /// Fresh-policy factory.
    pub policy: &'a PolicyFactory,
    /// Workload under test.
    pub workload: &'a dyn Workload,
    /// Fault regime for this cell (`None` = healthy cluster).
    pub faults: Option<FaultSpec>,
}

impl<'a> GridCell<'a> {
    /// A healthy-cluster cell.
    pub fn new(
        policy_name: impl Into<String>,
        policy: &'a PolicyFactory,
        workload: &'a dyn Workload,
    ) -> Self {
        GridCell {
            policy_name: policy_name.into(),
            policy,
            workload,
            faults: None,
        }
    }

    /// Attaches a fault regime to the cell.
    #[must_use]
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }
}

/// A completed cell with its per-seed results.
pub struct CellResult {
    /// Policy label.
    pub policy_name: String,
    /// Workload label.
    pub workload_name: String,
    /// Per-seed measurements, seed-ascending.
    pub results: Vec<SeedResult>,
}

impl CellResult {
    /// Total auditor findings across the cell's seeds (`0` = every run
    /// replayed clean).
    pub fn total_audit_findings(&self) -> usize {
        self.results.iter().map(|r| r.audit_findings).sum()
    }

    /// The cell's fault counters folded into one [`FaultStats`], with
    /// saturating integer arithmetic (a grid-scale fold must pin at
    /// `usize::MAX` rather than wrap). All zeros for fault-free cells.
    pub fn fault_stats(&self) -> FaultStats {
        fold_fault_stats(&self.results)
    }
}

/// Chunk size for the atomic dispatcher: about eight grabs per worker,
/// floored at one unit.
fn chunk_size(units: usize, threads: usize) -> usize {
    (units / threads / 8).max(1)
}

/// One worker: grabs chunks off the shared counter until the grid is
/// exhausted, returning its privately owned result shard. Each worker
/// drives one [`RunRequest`] (workspace + sink wiring) across every unit
/// it runs, switching [`RunMode`] and rebuilding the policy only when a
/// chunk crosses into a different cell.
fn worker_shard(
    cells: &[GridCell<'_>],
    seeds: &[u64],
    units: usize,
    chunk: usize,
    next: &AtomicUsize,
    sink: &dyn Sink,
) -> Vec<(usize, SeedResult)> {
    sink.add(Counter::SweepWorkers, 1);
    let mut req = RunRequest::new(RunMode::Plain).with_sink(sink);
    let mut shard: Vec<(usize, SeedResult)> = Vec::new();
    let mut current: Option<(usize, RunPolicy)> = None;
    let mut batch_out: Vec<SeedResult> = Vec::new();
    let mut done: u64 = 0;
    loop {
        let t0 = sink.enabled().then(Instant::now);
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if let Some(t0) = t0 {
            sink.add(
                Counter::SweepDispatchWaitNanos,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        if start >= units {
            break;
        }
        sink.add(Counter::SweepChunkGrabs, 1);
        let end = (start + chunk).min(units);
        // Split the grabbed chunk into maximal same-cell unit runs and
        // hand each run to the batched unit path in one call, so the
        // off-line optima of consecutive units solve through one SoA
        // kernel pass. Results are bit-identical to the per-unit path
        // whatever the run boundaries (the batched kernel solves each
        // lane independently), so chunk geometry stays unobservable.
        let mut unit = start;
        while unit < end {
            let cell_idx = unit / seeds.len();
            let lo = unit % seeds.len();
            let run_end = end.min((cell_idx + 1) * seeds.len());
            let run_seeds = &seeds[lo..lo + (run_end - unit)];
            let cell = &cells[cell_idx];
            let stale = !matches!(&current, Some((idx, _)) if *idx == cell_idx);
            if stale {
                req.set_mode(RunMode::from_faults(cell.faults));
                current = Some((cell_idx, req.policy(cell.policy)));
            }
            if let Some((_, policy)) = current.as_mut() {
                batch_out.clear();
                req.run_units(policy, cell.workload, run_seeds, &mut batch_out);
                for (off, result) in batch_out.drain(..).enumerate() {
                    shard.push((unit + off, result));
                    done += 1;
                }
            }
            unit = run_end;
        }
    }
    sink.add(Counter::SweepUnits, done);
    sink.observe(Hist::WorkerUnits, done);
    shard
}

/// Runs every cell over `seeds`, `threads`-wide. `threads = 0` means one
/// thread per available CPU; the count is always capped at the number of
/// `(cell, seed)` units, so asking for more threads than there is work
/// is safe. An empty grid (no cells, or an empty seed range) returns
/// immediately without spawning workers.
pub fn sweep(
    cells: Vec<GridCell<'_>>,
    seeds: std::ops::Range<u64>,
    threads: usize,
) -> Vec<CellResult> {
    sweep_with(cells, seeds, threads, mcc_obs::noop())
}

/// [`sweep`] with a metrics sink shared by every worker: worker and unit
/// counts, chunk-dispatch waits and per-worker unit histograms land in
/// `sink` alongside the solver/run/fault counters each unit records.
/// Metrics never feed back — results stay bit-identical to [`sweep`]'s,
/// whatever the thread count (the determinism test covers the live-sink
/// path too).
pub fn sweep_with(
    cells: Vec<GridCell<'_>>,
    seeds: std::ops::Range<u64>,
    threads: usize,
    sink: &dyn Sink,
) -> Vec<CellResult> {
    let seed_list: Vec<u64> = seeds.collect();
    let n_seeds = seed_list.len();
    let units = cells.len() * n_seeds;
    if units == 0 {
        // Nothing to run: keep every cell (with empty results) in grid
        // order rather than spawning workers that would exit at once.
        return cells
            .into_iter()
            .map(|cell| CellResult {
                policy_name: cell.policy_name,
                workload_name: cell.workload.name(),
                results: Vec::new(),
            })
            .collect();
    }
    let threads = effective_threads(threads, units);
    sink.gauge_max(Gauge::SweepThreads, threads as u64);
    sink.gauge_max(Gauge::SweepGridUnits, units as u64);
    sink.gauge_max(
        Gauge::HwThreads,
        std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
    );
    let chunk = chunk_size(units, threads);
    let next = AtomicUsize::new(0);
    let next_ref = &next;
    let cells_ref = &cells;
    let seed_ref = &seed_list;

    // Every worker owns its shard outright and hands it back through its
    // join handle — no shared result storage, no locks.
    let shards: Vec<Vec<(usize, SeedResult)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || worker_shard(cells_ref, seed_ref, units, chunk, next_ref, sink))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(shard) => shard,
                // Propagate a worker panic exactly like the pre-shard
                // scope did.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    // Scatter the shards back into grid order.
    let mut slots: Vec<Option<SeedResult>> = Vec::with_capacity(units);
    slots.resize_with(units, || None);
    for (unit, result) in shards.into_iter().flatten() {
        slots[unit] = Some(result);
    }
    let mut slot_iter = slots.into_iter();
    cells
        .into_iter()
        .map(|cell| CellResult {
            policy_name: cell.policy_name,
            workload_name: cell.workload.name(),
            // Every unit writes its slot exactly once; `flatten` is the
            // panic-free way to unwrap the storage Options.
            results: slot_iter.by_ref().take(n_seeds).flatten().collect(),
        })
        .collect()
}

/// `threads = 0` selects the available hardware parallelism; the result
/// is clamped to `1..=units` (one `(cell, seed)` pair per unit — a
/// thread beyond that would have no work to steal).
fn effective_threads(requested: usize, units: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, units.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::factory;
    use mcc_core::online::{Follow, SpeculativeCaching};
    use mcc_workloads::{CommonParams, PoissonWorkload, Workload, ZipfWorkload};

    fn grid<'a>(
        sc: &'a PolicyFactory,
        follow: &'a PolicyFactory,
        w1: &'a dyn Workload,
        w2: &'a dyn Workload,
    ) -> Vec<GridCell<'a>> {
        // A fixed-seed fault regime rides along so determinism across
        // thread counts covers the fault-injected path too — with every
        // chaos-layer class on (bursts, partitions, brownouts, failures
        // with backoff, delays, a finite degraded-mode queue).
        let spec = FaultSpec {
            seed: 11,
            crash_rate: 0.3,
            mean_downtime: 1.5,
            burst_rate: 0.1,
            burst_coverage: 0.5,
            partition_rate: 0.1,
            partition_mean: 0.6,
            brownout_rate: 0.1,
            brownout_mean: 0.8,
            brownout_factor: 2.5,
            fail_prob: 0.1,
            retry_budget: 8,
            backoff_base: 0.05,
            queue_cap: 4,
            mean_delay: 0.1,
            ..FaultSpec::default()
        };
        vec![
            GridCell::new("sc", sc, w1),
            GridCell::new("sc", sc, w2),
            GridCell::new("follow", follow, w1),
            GridCell::new("follow", follow, w2),
            GridCell::new("sc+ft", sc, w1).with_faults(spec),
            GridCell::new("sc-oblivious", sc, w1).with_faults(FaultSpec {
                tolerant: false,
                ..spec
            }),
        ]
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        // Workloads of *different shapes* (n and m), so a worker's reused
        // per-thread RunWorkspace crosses shapes in whatever order the
        // chunked stealing happens to interleave — results must not depend
        // on which thread (and thus which dirty workspace and reused
        // policy) ran a unit. Thread counts 1, 2 and 8 give distinct chunk
        // boundaries over the 24 units, and the two fault cells pin the
        // seed-driven plan expansion.
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let single = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 1);
        assert_eq!(single.len(), 6);
        for cell in &single {
            assert_eq!(cell.results.len(), 4, "no unit may be dropped");
        }
        for threads in [2, 8] {
            let multi = sweep(grid(&sc, &follow, &w1, &w2), 0..4, threads);
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!(a.policy_name, b.policy_name);
                assert_eq!(a.workload_name, b.workload_name);
                for (x, y) in a.results.iter().zip(&b.results) {
                    assert_eq!(x.online_cost, y.online_cost, "{threads} threads");
                    assert_eq!(x.opt_cost, y.opt_cost, "{threads} threads");
                    assert_eq!(x.audit_findings, y.audit_findings, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn sweep_with_live_sink_is_bit_identical_and_accounts_units() {
        use mcc_obs::Registry;
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let silent = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 2);
        let reg = Registry::new();
        let observed = sweep_with(grid(&sc, &follow, &w1, &w2), 0..4, 2, &reg);
        for (a, b) in silent.iter().zip(&observed) {
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.online_cost, y.online_cost, "metrics must never feed back");
                assert_eq!(x.opt_cost, y.opt_cost);
                assert_eq!(x.audit_findings, y.audit_findings);
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::SweepUnits), 24);
        assert_eq!(snap.counter(Counter::Runs), 24);
        assert!(snap.counter(Counter::SweepWorkers) >= 1);
        assert!(snap.counter(Counter::SweepChunkGrabs) >= 1);
        assert_eq!(snap.gauge(Gauge::SweepThreads), 2);
        assert_eq!(snap.gauge(Gauge::SweepGridUnits), 24);
        assert_eq!(snap.hist(Hist::WorkerUnits).sum, 24);
        assert_eq!(snap.hist(Hist::UnitNanos).count, 24);
    }

    #[test]
    fn cell_fault_stats_fold_matches_manual_sum() {
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let out = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 2);
        // Healthy cells fold to all-zero stats.
        assert_eq!(
            out[0].fault_stats(),
            mcc_core::online::FaultStats::default()
        );
        // The wrapped fault cell's fold matches a manual field-by-field sum.
        let folded = out[4].fault_stats();
        let manual: usize = out[4]
            .results
            .iter()
            .filter_map(|r| r.fault.as_ref())
            .map(|fo| fo.stats.retries)
            .sum();
        assert_eq!(folded.retries, manual);
    }

    #[test]
    fn fault_cells_aggregate_findings_per_cell() {
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let out = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 2);
        // Healthy cells and the wrapped fault cell replay clean; the
        // oblivious fault cell is the one that lights up.
        for cell in &out[..5] {
            assert_eq!(
                cell.total_audit_findings(),
                0,
                "{} must audit clean",
                cell.policy_name
            );
        }
        assert!(
            out[5].total_audit_findings() > 0,
            "oblivious cell must accumulate violations"
        );
    }

    #[test]
    fn empty_seed_range_returns_cells_with_empty_results() {
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        #[allow(clippy::reversed_empty_ranges)]
        let out = sweep(grid(&sc, &follow, &w1, &w2), 5..5, 4);
        assert_eq!(out.len(), 6, "cells survive an empty seed range");
        for cell in &out {
            assert!(cell.results.is_empty());
        }
        assert!(sweep(Vec::new(), 0..10, 4).is_empty(), "no cells, no rows");
    }

    #[test]
    fn more_threads_than_units_is_safe() {
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(3, 20), 1.0);
        let cells = vec![GridCell::new("sc", &sc, &w)];
        // 2 units, 64 requested threads: clamped, every unit exactly once.
        let out = sweep(cells, 0..2, 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].results.len(), 2);
        assert_eq!(out[0].results[0].seed, 0);
        assert_eq!(out[0].results[1].seed, 1);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 10) >= 1);
        assert_eq!(effective_threads(8, 2), 2, "capped at the unit count");
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(5, 0), 1, "empty grid still reports 1");
    }

    #[test]
    fn chunks_cover_the_grid_without_overlap() {
        // The dispatcher arithmetic: whatever the chunk size, the ranges
        // [start, min(start+chunk, units)) tile 0..units exactly.
        for (units, threads) in [(1, 1), (7, 2), (24, 8), (100, 3), (1000, 8)] {
            let chunk = chunk_size(units, threads);
            assert!(chunk >= 1);
            let next = AtomicUsize::new(0);
            let mut seen = vec![false; units];
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= units {
                    break;
                }
                let end = (start + chunk).min(units);
                for (u, slot) in seen.iter_mut().enumerate().take(end).skip(start) {
                    assert!(!*slot, "unit {u} dispatched twice");
                    *slot = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every unit dispatched");
        }
    }

    /// Wall-clock scaling smoke test (`cargo test -- --ignored`): on a
    /// multi-core host the 4-thread sweep must beat the 1-thread sweep on
    /// a non-trivial grid. Ignored by default — CI runners and dev
    /// containers may expose a single hardware thread, where the best
    /// possible outcome is parity.
    #[test]
    #[ignore]
    fn sweep_scales() {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        if hw < 4 {
            eprintln!("sweep_scales: skipped, needs >= 4 hardware threads (found {hw})");
            return;
        }
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let w = PoissonWorkload::uniform(CommonParams::small().with_size(8, 600), 1.0);
        let cells = |sc| vec![GridCell::new("sc", sc, &w)];
        // Warm-up so first-touch page faults don't bias the 1-thread pass.
        let _ = sweep(cells(&sc), 0..8, 1);
        let t0 = std::time::Instant::now();
        let a = sweep(cells(&sc), 0..64, 1);
        let one = t0.elapsed();
        let t0 = std::time::Instant::now();
        let b = sweep(cells(&sc), 0..64, 4);
        let four = t0.elapsed();
        assert_eq!(a[0].results.len(), b[0].results.len());
        assert!(
            four < one,
            "4 threads ({four:?}) must beat 1 thread ({one:?})"
        );
    }
}
