//! Parallel sweep execution over (policy × workload × seed) grids.
//!
//! Simulation cells are embarrassingly parallel and fully deterministic
//! per seed, so the sweep shards the grid over a fixed thread count with
//! scoped threads and reassembles results in grid order — results are
//! bit-identical regardless of thread count (asserted in the tests), which
//! is what makes the E10 scaling bench meaningful. Fault-injected cells
//! stay deterministic too: each seed expands its [`FaultSpec`] into the
//! same plan no matter which worker runs it.

use std::sync::Mutex;
use std::thread;

use mcc_workloads::Workload;

use crate::fault::FaultSpec;
use crate::runner::{run_cell_faulty_in, run_cell_in, PolicyFactory, RunWorkspace, SeedResult};

/// A named cell of the sweep grid.
pub struct GridCell<'a> {
    /// Policy label (factories don't carry names).
    pub policy_name: String,
    /// Fresh-policy factory.
    pub policy: &'a PolicyFactory,
    /// Workload under test.
    pub workload: &'a dyn Workload,
    /// Fault regime for this cell (`None` = healthy cluster).
    pub faults: Option<FaultSpec>,
}

impl<'a> GridCell<'a> {
    /// A healthy-cluster cell.
    pub fn new(
        policy_name: impl Into<String>,
        policy: &'a PolicyFactory,
        workload: &'a dyn Workload,
    ) -> Self {
        GridCell {
            policy_name: policy_name.into(),
            policy,
            workload,
            faults: None,
        }
    }

    /// Attaches a fault regime to the cell.
    #[must_use]
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }
}

/// A completed cell with its per-seed results.
pub struct CellResult {
    /// Policy label.
    pub policy_name: String,
    /// Workload label.
    pub workload_name: String,
    /// Per-seed measurements, seed-ascending.
    pub results: Vec<SeedResult>,
}

impl CellResult {
    /// Total auditor findings across the cell's seeds (`0` = every run
    /// replayed clean).
    pub fn total_audit_findings(&self) -> usize {
        self.results.iter().map(|r| r.audit_findings).sum()
    }
}

/// Runs every cell over `seeds`, `threads`-wide. `threads = 0` means one
/// thread per available CPU (capped at the number of cells).
pub fn sweep(
    cells: Vec<GridCell<'_>>,
    seeds: std::ops::Range<u64>,
    threads: usize,
) -> Vec<CellResult> {
    let seed_list: Vec<u64> = seeds.collect();
    let units = cells.len() * seed_list.len();
    let threads = effective_threads(threads, units);

    // Work-steal at (cell, seed) granularity: per-cell durations vary by an
    // order of magnitude (adversarial vs. Poisson traces), so cell-level
    // sharding would be straggler-bound.
    let mut out: Vec<Vec<Option<SeedResult>>> = cells
        .iter()
        .map(|_| {
            let mut v = Vec::with_capacity(seed_list.len());
            v.resize_with(seed_list.len(), || None);
            v
        })
        .collect();
    {
        let slots: Vec<Mutex<&mut [Option<SeedResult>]>> = out
            .iter_mut()
            .map(|v| Mutex::new(v.as_mut_slice()))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let cells_ref = &cells;
        let seed_ref = &seed_list;

        thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One run workspace per worker: warm solver tables,
                    // runtime record buffers, audit scratch and fault-plan
                    // storage amortize across every unit this thread steals,
                    // and per-seed determinism keeps results independent of
                    // which thread (and thus which dirty workspace) runs a
                    // unit.
                    let mut ws = RunWorkspace::new();
                    loop {
                        let unit = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if unit >= units {
                            break;
                        }
                        let cell_idx = unit / seed_ref.len();
                        let seed_idx = unit % seed_ref.len();
                        let seed = seed_ref[seed_idx];
                        let cell = &cells_ref[cell_idx];
                        // A one-seed range yields exactly one result, so the
                        // Option goes straight into the slot.
                        let result = match &cell.faults {
                            Some(spec) => run_cell_faulty_in(
                                cell.policy,
                                cell.workload,
                                seed..seed + 1,
                                spec,
                                &mut ws,
                            )
                            .pop(),
                            None => {
                                run_cell_in(cell.policy, cell.workload, seed..seed + 1, &mut ws)
                                    .pop()
                            }
                        };
                        // Workers only write disjoint slots; a poisoned lock
                        // means another worker panicked mid-store, but this
                        // slot's state is still valid to write.
                        let mut guard = match slots[cell_idx].lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard[seed_idx] = result;
                    }
                });
            }
        });
    }

    cells
        .into_iter()
        .zip(out)
        .map(|(cell, results)| CellResult {
            policy_name: cell.policy_name,
            workload_name: cell.workload.name(),
            // Every unit writes its slot exactly once; `flatten` is the
            // panic-free way to unwrap the storage Options.
            results: results.into_iter().flatten().collect(),
        })
        .collect()
}

fn effective_threads(requested: usize, cells: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, cells.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::factory;
    use mcc_core::online::{Follow, SpeculativeCaching};
    use mcc_workloads::{CommonParams, PoissonWorkload, Workload, ZipfWorkload};

    fn grid<'a>(
        sc: &'a PolicyFactory,
        follow: &'a PolicyFactory,
        w1: &'a dyn Workload,
        w2: &'a dyn Workload,
    ) -> Vec<GridCell<'a>> {
        // A fixed-seed fault regime rides along so determinism across
        // thread counts covers the fault-injected path too.
        let spec = FaultSpec {
            seed: 11,
            crash_rate: 0.3,
            mean_downtime: 1.5,
            ..FaultSpec::default()
        };
        vec![
            GridCell::new("sc", sc, w1),
            GridCell::new("sc", sc, w2),
            GridCell::new("follow", follow, w1),
            GridCell::new("follow", follow, w2),
            GridCell::new("sc+ft", sc, w1).with_faults(spec),
            GridCell::new("sc-oblivious", sc, w1).with_faults(FaultSpec {
                tolerant: false,
                ..spec
            }),
        ]
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        // Workloads of *different shapes* (n and m), so a worker's reused
        // per-thread RunWorkspace crosses shapes in whatever order the
        // work-stealing happens to interleave — results must not depend on
        // which thread's dirty workspace ran a unit. Thread counts 1, 2 and
        // 8 give distinct stealing patterns over the 24 units, and the two
        // fault cells pin the seed-driven plan expansion.
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let single = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 1);
        assert_eq!(single.len(), 6);
        for cell in &single {
            assert_eq!(cell.results.len(), 4, "no unit may be dropped");
        }
        for threads in [2, 8] {
            let multi = sweep(grid(&sc, &follow, &w1, &w2), 0..4, threads);
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!(a.policy_name, b.policy_name);
                assert_eq!(a.workload_name, b.workload_name);
                for (x, y) in a.results.iter().zip(&b.results) {
                    assert_eq!(x.online_cost, y.online_cost, "{threads} threads");
                    assert_eq!(x.opt_cost, y.opt_cost, "{threads} threads");
                    assert_eq!(x.audit_findings, y.audit_findings, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn fault_cells_aggregate_findings_per_cell() {
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let follow = factory(Follow::new());
        let w1 = PoissonWorkload::uniform(CommonParams::small().with_size(4, 40), 1.0);
        let w2 = ZipfWorkload::new(CommonParams::small().with_size(2, 12), 1.0, 1.2);
        let out = sweep(grid(&sc, &follow, &w1, &w2), 0..4, 2);
        // Healthy cells and the wrapped fault cell replay clean; the
        // oblivious fault cell is the one that lights up.
        for cell in &out[..5] {
            assert_eq!(
                cell.total_audit_findings(),
                0,
                "{} must audit clean",
                cell.policy_name
            );
        }
        assert!(
            out[5].total_audit_findings() > 0,
            "oblivious cell must accumulate violations"
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 10) >= 1);
        assert_eq!(effective_threads(8, 2), 2, "capped at cell count");
        assert_eq!(effective_threads(3, 100), 3);
    }
}
