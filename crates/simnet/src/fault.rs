//! Seed-driven fault-plan generation.
//!
//! A [`FaultSpec`] describes a fault *regime* — independent crash rate and
//! outage length, correlated crash-burst rate and coverage, partition and
//! brownout rates, transfer-failure probability with a per-run retry
//! budget; [`FaultSpec::plan_for`] expands it into a concrete,
//! deterministic [`FaultPlan`] for one `(spec seed, run seed)` pair — the
//! same pair always yields the same plan, which is what makes faulty
//! sweeps bit-identical across thread counts. Each fault class draws from
//! its own salted RNG stream, so turning a class on never perturbs the
//! draws of another.
//!
//! There is **no availability cap**: plans may down every server at once
//! (correlated bursts exist precisely to model that), and a single-server
//! cluster crashes like any other. The fault-tolerant wrapper survives
//! total outages with its degraded-mode queue (requests buffered up to the
//! plan's bound, dropped with accounting past it, replayed at first
//! recovery) rather than relying on a surviving server.

use mcc_core::online::{BrownoutWindow, CrashWindow, FaultPlan, PartitionWindow};
use mcc_model::ServerId;

/// A fault regime, expanded per run seed into a [`FaultPlan`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Base seed, mixed with each run seed.
    pub seed: u64,
    /// Expected independent crashes per server per unit time.
    pub crash_rate: f64,
    /// Mean outage duration (exponential).
    pub mean_downtime: f64,
    /// Expected correlated crash bursts per unit time (`0` disables). One
    /// burst downs a sampled group of servers for one shared outage —
    /// rack/zone failure.
    pub burst_rate: f64,
    /// Probability each server joins a given burst (at least one always
    /// does).
    pub burst_coverage: f64,
    /// Expected network partitions per unit time (`0` disables).
    pub partition_rate: f64,
    /// Mean partition duration (exponential).
    pub partition_mean: f64,
    /// Expected brownouts per unit time across the cluster (`0` disables).
    pub brownout_rate: f64,
    /// Mean brownout duration (exponential).
    pub brownout_mean: f64,
    /// Cost multiplier of a browned-out server (`> 1` to have any effect).
    pub brownout_factor: f64,
    /// Per-attempt transfer failure probability.
    pub fail_prob: f64,
    /// Per-run budget of failed transfer attempts (replaces the old flat
    /// per-transfer cap).
    pub retry_budget: u32,
    /// First-retry backoff wait; doubles per attempt, with deterministic
    /// jitter. `0` disables backoff waits.
    pub backoff_base: f64,
    /// Degraded-mode queue bound: total-outage deferrals past it drop.
    pub queue_cap: u32,
    /// Mean transfer delay (exponential); `0` disables delays.
    pub mean_delay: f64,
    /// Run policies wrapped in the fault-tolerant layer (`false` runs them
    /// oblivious, for measuring how badly unprotected policies break).
    pub tolerant: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            crash_rate: 0.02,
            mean_downtime: 1.0,
            burst_rate: 0.0,
            burst_coverage: 0.5,
            partition_rate: 0.0,
            partition_mean: 1.0,
            brownout_rate: 0.0,
            brownout_mean: 2.0,
            brownout_factor: 3.0,
            fail_prob: 0.05,
            retry_budget: 64,
            backoff_base: 0.0,
            queue_cap: 64,
            mean_delay: 0.0,
            tolerant: true,
        }
    }
}

/// xorshift64*: the same tiny generator the rest of the workspace embeds.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Exponential with the given mean (strictly positive).
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln().min(-f64::MIN_POSITIVE)
    }
}

/// Per-class RNG stream salts: distinct odd constants keep the fault
/// classes' draws independent of each other.
const SALT_CRASH: u64 = 0x94D0_49BB_1331_11EB;
const SALT_BURST: u64 = 0x2545_F491_4F6C_DD1D;
const SALT_PARTITION: u64 = 0xD6E8_FEB8_6659_FD93;
const SALT_BROWNOUT: u64 = 0xA076_1D64_78BD_642F;

/// Reusable buffers for [`FaultSpec::plan_for_into`]: the sampled windows
/// of each fault class before they are assigned into the plan.
#[derive(Default, Debug)]
pub struct PlanScratch {
    windows: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
    brownouts: Vec<BrownoutWindow>,
}

impl FaultSpec {
    /// A spec that injects nothing (plans come out trivial).
    pub fn none() -> Self {
        FaultSpec {
            crash_rate: 0.0,
            fail_prob: 0.0,
            mean_delay: 0.0,
            ..FaultSpec::default()
        }
    }

    /// Expands the regime into the concrete plan for one run.
    ///
    /// Deterministic in `(self.seed, run_seed, servers, horizon)`.
    /// Independent crash windows are sampled per server as a Poisson
    /// process of outage starts with exponential outage lengths over
    /// `[0, horizon]`; bursts, partitions and brownouts are Poisson event
    /// streams of their own, each from its own salted RNG.
    pub fn plan_for(&self, run_seed: u64, servers: usize, horizon: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let mut scratch = PlanScratch::default();
        self.plan_for_into(run_seed, servers, horizon, &mut plan, &mut scratch);
        plan
    }

    /// [`Self::plan_for`] into caller-owned storage: same draws, same
    /// resulting plan, zero allocations once `plan` and `scratch` are
    /// warm. This is what keeps per-seed fault expansion off the heap in
    /// the sweep hot path.
    pub fn plan_for_into(
        &self,
        run_seed: u64,
        servers: usize,
        horizon: f64,
        plan: &mut FaultPlan,
        scratch: &mut PlanScratch,
    ) {
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(run_seed)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        scratch.windows.clear();
        scratch.partitions.clear();
        scratch.brownouts.clear();
        let mut bursts = 0u32;
        let live = servers > 0 && horizon > 0.0;
        if live && self.crash_rate > 0.0 && self.mean_downtime > 0.0 {
            let mean_gap = 1.0 / self.crash_rate;
            for s in 0..servers {
                let mut rng = Rng::new(mixed.wrapping_add((s as u64 + 1).wrapping_mul(SALT_CRASH)));
                let mut t = rng.exp(mean_gap);
                while t < horizon {
                    let down = rng.exp(self.mean_downtime);
                    scratch.windows.push(CrashWindow {
                        server: ServerId::from_index(s),
                        from: t,
                        to: t + down,
                    });
                    t = t + down + rng.exp(mean_gap);
                }
            }
        }
        if live && self.burst_rate > 0.0 && self.mean_downtime > 0.0 {
            let mut rng = Rng::new(mixed.wrapping_mul(SALT_BURST).wrapping_add(SALT_BURST));
            let mut t = rng.exp(1.0 / self.burst_rate);
            while t < horizon {
                let down = rng.exp(self.mean_downtime);
                let mut hit_any = false;
                let forced = (rng.next_u64() % servers as u64) as usize;
                for s in 0..servers {
                    let hit = rng.unit() < self.burst_coverage;
                    if hit || s == forced {
                        // The forced pick keeps every burst non-empty
                        // without re-rolling (draw counts stay fixed, so
                        // later events are unaffected by earlier outcomes).
                        scratch.windows.push(CrashWindow {
                            server: ServerId::from_index(s),
                            from: t,
                            to: t + down,
                        });
                        hit_any = true;
                    }
                }
                if hit_any {
                    bursts += 1;
                }
                t = t + down + rng.exp(1.0 / self.burst_rate);
            }
        }
        if live && servers > 1 && self.partition_rate > 0.0 && self.partition_mean > 0.0 {
            let mut rng = Rng::new(
                mixed
                    .wrapping_mul(SALT_PARTITION)
                    .wrapping_add(SALT_PARTITION),
            );
            let mut t = rng.exp(1.0 / self.partition_rate);
            while t < horizon {
                let span = rng.exp(self.partition_mean);
                let mask = rng.next_u64();
                let used = if servers >= 64 {
                    u64::MAX
                } else {
                    (1u64 << servers) - 1
                };
                // Degenerate masks (everyone on one side) partition
                // nothing; skip them rather than re-rolling.
                if mask & used != 0 && (mask & used) != used {
                    scratch.partitions.push(PartitionWindow {
                        from: t,
                        to: t + span,
                        mask,
                    });
                }
                t = t + span + rng.exp(1.0 / self.partition_rate);
            }
        }
        if live
            && self.brownout_rate > 0.0
            && self.brownout_mean > 0.0
            && self.brownout_factor > 1.0
        {
            let mut rng = Rng::new(
                mixed
                    .wrapping_mul(SALT_BROWNOUT)
                    .wrapping_add(SALT_BROWNOUT),
            );
            let mut t = rng.exp(1.0 / self.brownout_rate);
            while t < horizon {
                let span = rng.exp(self.brownout_mean);
                let server = (rng.next_u64() % servers as u64) as usize;
                scratch.brownouts.push(BrownoutWindow {
                    server: ServerId::from_index(server),
                    from: t,
                    to: t + span,
                    factor: self.brownout_factor,
                });
                t += rng.exp(1.0 / self.brownout_rate);
            }
        }
        plan.assign(
            &scratch.windows,
            &scratch.partitions,
            &scratch.brownouts,
            mixed ^ 0xD6E8_FEB8_6659_FD93,
            self.fail_prob,
            self.retry_budget,
            self.backoff_base,
            self.mean_delay,
            self.queue_cap,
            bursts,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed_pair() {
        let spec = FaultSpec {
            seed: 9,
            crash_rate: 0.3,
            burst_rate: 0.1,
            partition_rate: 0.1,
            brownout_rate: 0.1,
            ..FaultSpec::default()
        };
        let a = spec.plan_for(4, 8, 50.0);
        let b = spec.plan_for(4, 8, 50.0);
        assert_eq!(a, b);
        let c = spec.plan_for(5, 8, 50.0);
        assert_ne!(a, c, "different run seeds draw different plans");
    }

    #[test]
    fn fault_classes_draw_from_independent_streams() {
        // Enabling bursts/partitions/brownouts must not change the
        // independent crash draws of the same seed pair.
        let base = FaultSpec {
            seed: 3,
            crash_rate: 0.4,
            ..FaultSpec::default()
        };
        let rich = FaultSpec {
            burst_rate: 0.2,
            partition_rate: 0.2,
            brownout_rate: 0.3,
            ..base
        };
        let a = base.plan_for(7, 5, 40.0);
        let b = rich.plan_for(7, 5, 40.0);
        // Span coverage, not verbatim equality: the plan coalesces
        // overlapping same-server windows, so a burst landing on top of a
        // base crash widens it — but never shrinks or moves it.
        for w in a.crashes() {
            assert!(
                b.crashes()
                    .iter()
                    .any(|v| v.server == w.server && v.from <= w.from && w.to <= v.to),
                "independent crash {w:?} not covered by the rich plan"
            );
        }
        assert!(b.partitions().len() + b.brownouts().len() > 0);
    }

    #[test]
    fn bursts_down_server_groups_with_shared_windows() {
        let spec = FaultSpec {
            seed: 11,
            crash_rate: 0.0,
            burst_rate: 0.2,
            burst_coverage: 0.6,
            mean_downtime: 2.0,
            ..FaultSpec::default()
        };
        let plan = spec.plan_for(1, 6, 60.0);
        assert!(plan.bursts() > 0, "burst rate 0.2 over 60 units fires");
        assert!(plan.has_crashes());
        // Every crash window comes from a burst: windows sharing a start
        // share the burst's downtime, and each burst downs ≥ 1 server.
        for w in plan.crashes() {
            let group: Vec<_> = plan.crashes().iter().filter(|v| v.from == w.from).collect();
            assert!(!group.is_empty());
            assert!(
                group.iter().all(|v| v.to == w.to),
                "burst members share the outage window"
            );
        }
    }

    #[test]
    fn partitions_have_two_nonempty_sides() {
        let spec = FaultSpec {
            seed: 5,
            crash_rate: 0.0,
            partition_rate: 0.3,
            partition_mean: 2.0,
            ..FaultSpec::default()
        };
        let servers = 6;
        let plan = spec.plan_for(2, servers, 80.0);
        assert!(!plan.partitions().is_empty());
        let used = (1u64 << servers) - 1;
        for w in plan.partitions() {
            assert!(w.mask & used != 0 && (w.mask & used) != used);
            assert!(w.to > w.from);
        }
        // Single-server clusters cannot partition.
        assert!(spec.plan_for(2, 1, 80.0).partitions().is_empty());
    }

    #[test]
    fn total_outages_are_generated_uncapped() {
        // A pathologically crashy regime must now be able to down the
        // whole cluster at once (the old m − 1 cap is gone).
        let spec = FaultSpec {
            seed: 3,
            crash_rate: 2.0,
            mean_downtime: 5.0,
            ..FaultSpec::default()
        };
        let mut saw_total = false;
        for servers in [2usize, 3] {
            for run_seed in 0..8u64 {
                let plan = spec.plan_for(run_seed, servers, 40.0);
                let (mut ev, mut depth, mut out) = (Vec::new(), Vec::new(), Vec::new());
                plan.total_outages_into(servers, &mut ev, &mut depth, &mut out);
                saw_total |= !out.is_empty();
            }
        }
        assert!(saw_total, "rate 2.0 / downtime 5.0 overlaps everything");
    }

    #[test]
    fn single_server_clusters_crash_too() {
        let spec = FaultSpec {
            seed: 1,
            crash_rate: 0.5,
            ..FaultSpec::default()
        };
        assert!(
            spec.plan_for(0, 1, 100.0).has_crashes(),
            "m = 1 crashes are legal now: the queue survives them"
        );
    }

    #[test]
    fn plan_for_into_reuses_buffers_and_matches_plan_for() {
        let spec = FaultSpec {
            seed: 9,
            crash_rate: 0.5,
            burst_rate: 0.1,
            partition_rate: 0.15,
            brownout_rate: 0.2,
            ..FaultSpec::default()
        };
        let mut plan = FaultPlan::none();
        let mut scratch = PlanScratch::default();
        for run_seed in 0..6u64 {
            spec.plan_for_into(run_seed, 8, 50.0, &mut plan, &mut scratch);
            assert_eq!(plan, spec.plan_for(run_seed, 8, 50.0));
        }
    }

    #[test]
    fn zero_rates_yield_trivial_plans() {
        let spec = FaultSpec {
            crash_rate: 0.0,
            fail_prob: 0.0,
            mean_delay: 0.0,
            ..FaultSpec::default()
        };
        assert!(!spec.plan_for(0, 4, 100.0).has_crashes());
        assert!(FaultSpec::none().plan_for(0, 8, 100.0).is_trivial());
    }
}
