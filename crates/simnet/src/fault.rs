//! Seed-driven fault-plan generation.
//!
//! A [`FaultSpec`] describes a fault *regime* (crash rate, outage length,
//! transfer-failure probability); [`FaultSpec::plan_for`] expands it into
//! a concrete, deterministic [`FaultPlan`] for one `(spec seed, run seed)`
//! pair — the same pair always yields the same plan, which is what makes
//! faulty sweeps bit-identical across thread counts.
//!
//! The generator enforces the availability invariant the fault-tolerant
//! wrapper's survival guarantee rests on: at most `m − 1` servers are
//! down at any instant (windows that would exceed the cap are dropped),
//! so every crash start leaves at least one server up. Single-server
//! clusters get no crashes at all — there is nowhere to evacuate to.

use mcc_core::online::{CrashWindow, FaultPlan};
use mcc_model::ServerId;

/// A fault regime, expanded per run seed into a [`FaultPlan`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Base seed, mixed with each run seed.
    pub seed: u64,
    /// Expected crashes per server per unit time.
    pub crash_rate: f64,
    /// Mean outage duration (exponential).
    pub mean_downtime: f64,
    /// Per-attempt transfer failure probability.
    pub fail_prob: f64,
    /// Cap on consecutive failed attempts of one transfer.
    pub max_failed_attempts: u32,
    /// Mean transfer delay (exponential); `0` disables delays.
    pub mean_delay: f64,
    /// Run policies wrapped in the fault-tolerant layer (`false` runs them
    /// oblivious, for measuring how badly unprotected policies break).
    pub tolerant: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            crash_rate: 0.02,
            mean_downtime: 1.0,
            fail_prob: 0.05,
            max_failed_attempts: 8,
            mean_delay: 0.0,
            tolerant: true,
        }
    }
}

/// xorshift64*: the same tiny generator the rest of the workspace embeds.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Exponential with the given mean (strictly positive).
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln().min(-f64::MIN_POSITIVE)
    }
}

/// Reusable buffers for [`FaultSpec::plan_for_into`]: the sampled crash
/// windows before cap enforcement, and the active-outage sweep state.
#[derive(Default, Debug)]
pub struct PlanScratch {
    windows: Vec<CrashWindow>,
    active: Vec<f64>,
}

impl FaultSpec {
    /// A spec that injects nothing (plans come out trivial).
    pub fn none() -> Self {
        FaultSpec {
            crash_rate: 0.0,
            fail_prob: 0.0,
            mean_delay: 0.0,
            ..FaultSpec::default()
        }
    }

    /// Expands the regime into the concrete plan for one run.
    ///
    /// Deterministic in `(self.seed, run_seed, servers, horizon)`. Crash
    /// windows are sampled per server as a Poisson process of outage
    /// starts with exponential outage lengths over `[0, horizon]`, then
    /// swept in time order dropping any window that would push concurrent
    /// outages past `m − 1`.
    pub fn plan_for(&self, run_seed: u64, servers: usize, horizon: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let mut scratch = PlanScratch::default();
        self.plan_for_into(run_seed, servers, horizon, &mut plan, &mut scratch);
        plan
    }

    /// [`Self::plan_for`] into caller-owned storage: same draws, same
    /// resulting plan, zero allocations once `plan` and `scratch` are
    /// warm. This is what keeps per-seed fault expansion off the heap in
    /// the sweep hot path.
    pub fn plan_for_into(
        &self,
        run_seed: u64,
        servers: usize,
        horizon: f64,
        plan: &mut FaultPlan,
        scratch: &mut PlanScratch,
    ) {
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(run_seed)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        scratch.windows.clear();
        if self.crash_rate > 0.0 && self.mean_downtime > 0.0 && servers > 1 && horizon > 0.0 {
            let mean_gap = 1.0 / self.crash_rate;
            for s in 0..servers {
                let mut rng = Rng::new(
                    mixed.wrapping_add((s as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB)),
                );
                let mut t = rng.exp(mean_gap);
                while t < horizon {
                    let down = rng.exp(self.mean_downtime);
                    scratch.windows.push(CrashWindow {
                        server: ServerId::from_index(s),
                        from: t,
                        to: t + down,
                    });
                    t = t + down + rng.exp(mean_gap);
                }
            }
            // Unstable sort allocates nothing; `(from, server)` is unique
            // (per-server starts are strictly increasing), so the order
            // is still deterministic.
            scratch
                .windows
                .sort_unstable_by(|a, b| a.from.total_cmp(&b.from).then(a.server.cmp(&b.server)));
            enforce_cap(&mut scratch.windows, &mut scratch.active, servers - 1);
        }
        plan.assign(
            &scratch.windows,
            mixed ^ 0xD6E8_FEB8_6659_FD93,
            self.fail_prob,
            self.max_failed_attempts,
            self.mean_delay,
        );
    }
}

/// Drops windows that would exceed `cap` concurrent outages, in place
/// (write-compaction sweep over crash starts with the active recovery
/// times).
fn enforce_cap(windows: &mut Vec<CrashWindow>, active: &mut Vec<f64>, cap: usize) {
    active.clear();
    let mut keep = 0;
    for i in 0..windows.len() {
        let w = windows[i];
        active.retain(|&to| to > w.from);
        if active.len() < cap {
            active.push(w.to);
            windows[keep] = w;
            keep += 1;
        }
    }
    windows.truncate(keep);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed_pair() {
        let spec = FaultSpec {
            seed: 9,
            crash_rate: 0.3,
            ..FaultSpec::default()
        };
        let a = spec.plan_for(4, 8, 50.0);
        let b = spec.plan_for(4, 8, 50.0);
        assert_eq!(a, b);
        let c = spec.plan_for(5, 8, 50.0);
        assert_ne!(a, c, "different run seeds draw different plans");
    }

    #[test]
    fn concurrent_outages_never_reach_cluster_size() {
        let spec = FaultSpec {
            seed: 3,
            crash_rate: 2.0,    // pathologically crashy
            mean_downtime: 5.0, // long outages force overlaps
            ..FaultSpec::default()
        };
        for servers in [2usize, 3, 5] {
            let plan = spec.plan_for(0, servers, 40.0);
            assert!(plan.has_crashes());
            // At every crash start, concurrent outages stay below m.
            for w in plan.crashes() {
                let down = plan
                    .crashes()
                    .iter()
                    .filter(|v| v.from <= w.from && w.from < v.to)
                    .count();
                assert!(
                    down < servers,
                    "m={servers}: {down} concurrent outages at t={}",
                    w.from
                );
            }
        }
    }

    #[test]
    fn plan_for_into_reuses_buffers_and_matches_plan_for() {
        let spec = FaultSpec {
            seed: 9,
            crash_rate: 0.5,
            ..FaultSpec::default()
        };
        let mut plan = FaultPlan::none();
        let mut scratch = PlanScratch::default();
        for run_seed in 0..6u64 {
            spec.plan_for_into(run_seed, 8, 50.0, &mut plan, &mut scratch);
            assert_eq!(plan, spec.plan_for(run_seed, 8, 50.0));
        }
    }

    #[test]
    fn single_server_and_zero_rate_yield_trivial_crashes() {
        let spec = FaultSpec {
            crash_rate: 5.0,
            fail_prob: 0.0,
            mean_delay: 0.0,
            ..FaultSpec::default()
        };
        assert!(!spec.plan_for(0, 1, 100.0).has_crashes());
        assert!(FaultSpec::none().plan_for(0, 8, 100.0).is_trivial());
    }
}
