//! The always-on schedule auditor.
//!
//! Every run that goes through `run_cell`/`sweep` is replayed here after
//! the fact — feasibility violations, unpaid transfers and cost-accounting
//! drift become typed [`AuditFinding`]s instead of debug-build panics, so
//! release sweeps surface defects instead of silently aggregating bogus
//! costs.
//!
//! The referee in `mcc-model` ([`mcc_model::validate_with`]) is quadratic
//! in schedule size (`O(|H|·|T|)`), which is fine for tests but too slow
//! to run after every seed of a full sweep. The auditor performs the same
//! checks with per-server sorted interval indexes and binary-searched
//! transfer lookups (`O((|H| + |T| + n)·log)`), which keeps always-on
//! auditing unmeasurable next to the off-line DP each seed already pays
//! for.
//!
//! When a [`FaultPlan`] is supplied the replay additionally applies
//! *reality*: copies die at crash instants, intervals claimed on a down
//! server are stillborn, transfers out of a down or crash-lost source —
//! or across an active network partition — are invalid and their
//! delivered copies (and everything served from them) die in cascade.
//! Findings that no policy could avoid are *waived*: requests and
//! coverage gaps inside a **total outage** (every server down), requests
//! a partition strands with no same-side live copy, and cache intervals
//! grounded as durable-storage reseeds (at a total-outage end, or at a
//! crash instant under an active partition). Brownout windows do not
//! change feasibility but surcharge the cost recompute. A fault-oblivious
//! policy's believed schedule lights up with findings under this replay;
//! the fault-tolerant wrapper's schedule must stay clean (property-tested
//! in `tests/fault_properties.rs`).
//!
//! Boundary semantics: a copy may be read *at* the crash instant (the
//! evacuation "last gasp" — state just before the crash takes hold), so a
//! transfer source is only invalid strictly inside an outage; a copy
//! *created* at or inside an outage with positive length is fictional.

use mcc_core::online::{FaultPlan, OnlineRun};
use mcc_model::{Instance, Schedule, ServerId, Violation};

use crate::engine::SimOutcome;

// --- shared fault-waiver helpers ------------------------------------------
//
// Both auditors (this replay and the streaming sweep in
// `crate::streaming`) judge the new fault classes through these exact
// functions, so their verdicts — and the bit pattern of every recomputed
// cost — cannot drift apart.

/// Approximate time equality at `tol`, the same rule as the model referee.
pub(crate) fn eq_tol(tol: f64, a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Whether a cache interval starting at `from` with no incoming transfer
/// is *grounded* — justified as a durable-storage reseed: it starts at a
/// total-outage end (first-recovery reseed) or at a crash instant under an
/// active partition (the wrapper's stranded-evacuation reseed). Grounded
/// intervals may also source transfers at their own start instant, like
/// the origin's initial copy at `t = 0`.
pub(crate) fn grounded_start(
    tol: f64,
    plan: &FaultPlan,
    outages: &[(f64, f64)],
    from: f64,
) -> bool {
    outages.iter().any(|w| eq_tol(tol, from, w.1))
        || plan
            .crashes()
            .iter()
            .any(|c| eq_tol(tol, from, c.from) && plan.partition_active(c.from))
}

/// Whether instant `t` falls inside a total outage `[from, to)` — requests
/// there are unservable by any policy and their service findings are
/// waived (the wrapper defers them into its offline queue).
pub(crate) fn outage_covers(tol: f64, outages: &[(f64, f64)], t: f64) -> bool {
    outages
        .iter()
        .any(|w| (w.0 <= t || eq_tol(tol, w.0, t)) && t < w.1 && !eq_tol(tol, t, w.1))
}

/// Whether a coverage gap `[from, to]` lies inside a total outage (within
/// tolerance): no copy can exist anywhere over such a span.
pub(crate) fn gap_waived(tol: f64, outages: &[(f64, f64)], from: f64, to: f64) -> bool {
    outages
        .iter()
        .any(|w| (w.0 <= from || eq_tol(tol, w.0, from)) && (to <= w.1 || eq_tol(tol, to, w.1)))
}

/// Brownout `μ` surcharge of one merged cache interval: `(factor − 1)·μ`
/// per unit of overlap with each degrading window (overlaps stack).
pub(crate) fn interval_surcharge(
    plan: &FaultPlan,
    server: ServerId,
    from: f64,
    to: f64,
    mu: f64,
) -> f64 {
    let mut sur = 0.0;
    for w in plan.brownouts() {
        if w.server == server {
            let overlap = to.min(w.to) - from.max(w.from);
            if overlap > 0.0 {
                sur += (w.factor - 1.0) * mu * overlap;
            }
        }
    }
    sur
}

/// Brownout `λ` surcharge of one transfer: the worse endpoint's excess.
pub(crate) fn transfer_surcharge(
    plan: &FaultPlan,
    src: ServerId,
    dst: ServerId,
    at: f64,
    lambda: f64,
) -> f64 {
    let excess = plan
        .brownout_excess(src, at)
        .max(plan.brownout_excess(dst, at));
    if excess > 0.0 {
        lambda * excess
    } else {
        0.0
    }
}

/// One defect found by the auditor.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditFinding {
    /// A feasibility violation (same vocabulary as the model referee,
    /// extended with the fault-replay variants).
    Violation(Violation),
    /// The run's reported cost disagrees with the recomputed schedule cost.
    CostDrift {
        /// Cost the run reported.
        reported: f64,
        /// Cost recomputed from the schedule.
        recomputed: f64,
    },
    /// Transfers were performed but not costed (or vice versa).
    UnpaidTransfers {
        /// Transfers in the raw run record.
        recorded: usize,
        /// Transfers in the costed schedule.
        costed: usize,
    },
    /// A capacity-constrained server admitted more items than it has
    /// slots (fleet capacity sweep with eviction disabled — an enabled
    /// eviction policy resolves the pressure instead of reporting it).
    CapacityViolation {
        /// Server whose slots overflowed.
        server: usize,
        /// Event time of the over-capacity admission.
        at: f64,
        /// Occupancy the admission produced.
        occupancy: usize,
        /// The server's slot budget.
        capacity: usize,
    },
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditFinding::Violation(v) => write!(f, "{v}"),
            AuditFinding::CostDrift {
                reported,
                recomputed,
            } => write!(
                f,
                "reported cost {reported} drifts from recomputed {recomputed}"
            ),
            AuditFinding::UnpaidTransfers { recorded, costed } => {
                write!(f, "{recorded} transfers performed but {costed} costed")
            }
            AuditFinding::CapacityViolation {
                server,
                at,
                occupancy,
                capacity,
            } => write!(
                f,
                "server {server} holds {occupancy} items at t={at} with only {capacity} slots"
            ),
        }
    }
}

/// The auditor's verdict on one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditReport {
    /// Every defect found (empty for a clean run).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Whether the run passed with no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings (mirrors [`Self::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of feasibility violations (excludes accounting findings).
    pub fn violations(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f, AuditFinding::Violation(_)))
            .count()
    }
}

/// Replays schedules and reports defects as typed findings.
#[derive(Copy, Clone, Debug)]
pub struct ScheduleAuditor {
    /// Relative/absolute time-matching tolerance (see
    /// `mcc_model::Scalar::approx_eq`).
    pub tol: f64,
}

impl Default for ScheduleAuditor {
    fn default() -> Self {
        ScheduleAuditor { tol: 1e-9 }
    }
}

/// A cache interval being replayed: `to` is what the schedule claims,
/// `actual_to` what survives the fault replay.
#[derive(Copy, Clone, Debug)]
struct Iv {
    from: f64,
    to: f64,
    actual_to: f64,
    alive: bool,
    /// Justified as a durable-storage reseed (see [`grounded_start`]).
    grounded: bool,
}

impl ScheduleAuditor {
    /// Approximate time equality, matching the model referee's rule.
    fn eq(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        (a - b).abs() <= self.tol * a.abs().max(b.abs()).max(1.0)
    }

    fn le(&self, a: f64, b: f64) -> bool {
        a <= b || self.eq(a, b)
    }

    /// Audits an online run (schedule, reported cost, transfer count).
    pub fn audit_run(
        &self,
        inst: &Instance<f64>,
        run: &OnlineRun<f64>,
        plan: Option<&FaultPlan>,
    ) -> AuditReport {
        self.audit(
            inst,
            &run.schedule,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            plan,
        )
    }

    /// Audits a simulation outcome.
    pub fn audit_outcome(&self, outcome: &SimOutcome, plan: Option<&FaultPlan>) -> AuditReport {
        self.audit(
            &outcome.instance,
            &outcome.record.to_schedule(),
            Some(outcome.total_cost),
            Some(outcome.record.transfers.len()),
            plan,
        )
    }

    /// Full replay of `sched` against `inst` (and `plan`, when supplied).
    pub fn audit(
        &self,
        inst: &Instance<f64>,
        sched: &Schedule<f64>,
        reported_cost: Option<f64>,
        recorded_transfers: Option<usize>,
        plan: Option<&FaultPlan>,
    ) -> AuditReport {
        let mut findings = Vec::new();

        // --- structural: malformed intervals stop the replay early ------
        let mut malformed = false;
        for h in &sched.caches {
            if h.to < h.from || h.from < 0.0 || !h.from.is_finite() || !h.to.is_finite() {
                findings.push(AuditFinding::Violation(Violation::MalformedInterval {
                    server: h.server,
                    from: h.from,
                    to: h.to,
                }));
                malformed = true;
            }
        }
        if malformed {
            return AuditReport { findings };
        }

        let servers = inst.servers();

        // Total-outage windows: spans where every server is down. Service
        // and coverage findings inside them are waived (the wrapper's
        // degraded-mode queue is the only service path there), and reseeds
        // at their ends are grounded.
        let mut outages: Vec<(f64, f64)> = Vec::new();
        if let Some(plan) = plan {
            let (mut events, mut depth) = (Vec::new(), Vec::new());
            plan.total_outages_into(servers, &mut events, &mut depth, &mut outages);
        }

        // Per-server interval index, sorted by start.
        let mut ivs: Vec<Vec<Iv>> = vec![Vec::new(); servers];
        for h in &sched.caches {
            if h.server.index() < servers {
                ivs[h.server.index()].push(Iv {
                    from: h.from,
                    to: h.to,
                    actual_to: h.to,
                    alive: true,
                    grounded: plan.is_some_and(|p| grounded_start(self.tol, p, &outages, h.from)),
                });
            }
        }
        for list in &mut ivs {
            list.sort_by(|a, b| a.from.total_cmp(&b.from));
        }

        // Overlaps double-count cost (believed geometry, fault-independent).
        for (s, list) in ivs.iter().enumerate() {
            for w in list.windows(2) {
                if w[1].from < w[0].to && !self.eq(w[1].from, w[0].to) {
                    findings.push(AuditFinding::Violation(Violation::OverlappingIntervals {
                        server: ServerId::from_index(s),
                        at: w[1].from,
                    }));
                }
            }
        }

        // All incoming transfer times per destination, for provenance.
        let mut incoming: Vec<Vec<f64>> = vec![Vec::new(); servers];
        for tr in &sched.transfers {
            if tr.dst.index() < servers {
                incoming[tr.dst.index()].push(tr.at);
            }
        }
        for list in &mut incoming {
            list.sort_by(f64::total_cmp);
        }
        let has_time = |list: &[f64], at: f64, tol_eq: &dyn Fn(f64, f64) -> bool| {
            let i = list.partition_point(|&x| x < at);
            (i < list.len() && tol_eq(list[i], at)) || (i > 0 && tol_eq(list[i - 1], at))
        };

        // Provenance: every interval starts at the origin at t = 0, at an
        // incoming transfer, or seamlessly continues its predecessor.
        let eqf = |a: f64, b: f64| self.eq(a, b);
        for (s, list) in ivs.iter().enumerate() {
            for (k, iv) in list.iter().enumerate() {
                let origin_start = s == ServerId::ORIGIN.index() && self.eq(iv.from, 0.0);
                let continuation = k > 0 && self.le(iv.from, list[k - 1].to);
                if !origin_start
                    && !continuation
                    && !iv.grounded
                    && !has_time(&incoming[s], iv.from, &eqf)
                {
                    findings.push(AuditFinding::Violation(Violation::UnjustifiedCacheStart {
                        server: ServerId::from_index(s),
                        at: iv.from,
                    }));
                }
            }
        }

        // --- fault replay: crashes kill copies --------------------------
        if let Some(plan) = plan {
            for w in plan.crashes() {
                if w.server.index() >= servers {
                    continue;
                }
                let list = &mut ivs[w.server.index()];
                // Intervals created at/inside the outage with positive
                // length are stillborn; intervals spanning the crash are
                // truncated at it.
                for iv in list.iter_mut() {
                    if !iv.alive {
                        continue;
                    }
                    if iv.from >= w.from && iv.from < w.to {
                        if iv.actual_to > iv.from && !self.eq(iv.actual_to, iv.from) {
                            iv.alive = false;
                            iv.actual_to = iv.from;
                            findings.push(AuditFinding::Violation(Violation::CopyLostInCrash {
                                server: w.server,
                                at: iv.from,
                            }));
                        }
                    } else if iv.from < w.from
                        && iv.actual_to > w.from
                        && !self.eq(iv.actual_to, w.from)
                    {
                        iv.actual_to = w.from;
                        findings.push(AuditFinding::Violation(Violation::CopyLostInCrash {
                            server: w.server,
                            at: w.from,
                        }));
                    }
                }
            }
        }

        // --- transfers, replayed in time order --------------------------
        // An invalid transfer kills the copy it delivered (cascade: later
        // transfers sourced from that copy are invalid too, and requests
        // it served go unserved).
        let mut order: Vec<usize> = (0..sched.transfers.len()).collect();
        order.sort_by(|&a, &b| sched.transfers[a].at.total_cmp(&sched.transfers[b].at));
        let mut delivered: Vec<Vec<f64>> = vec![Vec::new(); servers];
        for idx in order {
            let tr = &sched.transfers[idx];
            if tr.src.index() >= servers || tr.dst.index() >= servers {
                findings.push(AuditFinding::Violation(Violation::DeadTransferSource {
                    src: tr.src,
                    dst: tr.dst,
                    at: tr.at,
                }));
                continue;
            }
            // Strictly inside an outage the source machine cannot send
            // (the boundary instant is the pre-crash state).
            let src_down = plan.is_some_and(|p| {
                p.crashes()
                    .iter()
                    .any(|w| w.server == tr.src && tr.at > w.from && tr.at < w.to)
            });
            let src_alive = !src_down
                && ivs[tr.src.index()].iter().any(|iv| {
                    iv.alive
                        && self.le(iv.from, tr.at)
                        && self.le(tr.at, iv.actual_to)
                        && (iv.from < tr.at
                            || (tr.src == ServerId::ORIGIN && self.eq(iv.from, 0.0))
                            || (iv.grounded && self.eq(iv.from, tr.at)))
                });
            // A grounded *pass-through*: a durable-storage reseed that
            // relays the copy onward at the very instant it lands leaves a
            // zero-length interval in the raw record, which `normalize`
            // drops from the schedule — so the transfer it sourced has no
            // covering interval here. The raw record keeps the interval
            // (the streaming auditor accepts it through its grounded
            // flag); the replay accepts the phantom at the same grounded
            // instants.
            let phantom_grounded = !src_down
                && !src_alive
                && plan.is_some_and(|p| grounded_start(self.tol, p, &outages, tr.at));
            let src_alive = src_alive || phantom_grounded;
            // An otherwise-valid transfer crossing an active partition is
            // illegal (outage and dead-source findings take precedence).
            let severed = src_alive && plan.is_some_and(|p| p.partitioned(tr.src, tr.dst, tr.at));
            if src_alive && !severed {
                delivered[tr.dst.index()].push(tr.at);
            } else {
                findings.push(AuditFinding::Violation(if src_down {
                    Violation::TransferDuringOutage {
                        src: tr.src,
                        at: tr.at,
                    }
                } else if severed {
                    Violation::TransferAcrossPartition {
                        src: tr.src,
                        dst: tr.dst,
                        at: tr.at,
                    }
                } else {
                    Violation::DeadTransferSource {
                        src: tr.src,
                        dst: tr.dst,
                        at: tr.at,
                    }
                }));
                // Kill the interval this transfer would have opened.
                for iv in ivs[tr.dst.index()].iter_mut() {
                    if iv.alive && self.eq(iv.from, tr.at) {
                        iv.alive = false;
                        iv.actual_to = iv.from;
                    }
                }
            }
        }
        for list in &mut delivered {
            list.sort_by(f64::total_cmp);
        }

        // --- service ----------------------------------------------------
        // Latest request that pins the coverage obligation: one served
        // in-schedule, or one unserved without a deferral waiver. Requests
        // past it were all absorbed by the wrapper's offline queue, so the
        // schedule owes no coverage beyond the last covered instant.
        let mut tail_block = f64::NEG_INFINITY;
        for i in 1..=inst.n() {
            let (s, t) = (inst.server(i), inst.t(i));
            let cached = s.index() < servers
                && ivs[s.index()]
                    .iter()
                    .any(|iv| iv.alive && self.le(iv.from, t) && self.le(t, iv.actual_to));
            let transferred = s.index() < servers && has_time(&delivered[s.index()], t, &eqf);
            if cached || transferred {
                tail_block = tail_block.max(t);
            }
            if !cached && !transferred {
                // Waived when reality made service impossible: a total
                // outage covers `t`, or a partition puts every live copy
                // on the far side (the wrapper defers such requests into
                // its accounted offline queue).
                let waived = plan.is_some_and(|p| {
                    outage_covers(self.tol, &outages, t)
                        || (p.partition_active(t)
                            && !ivs.iter().enumerate().any(|(s2, list)| {
                                !p.partitioned(ServerId::from_index(s2), s, t)
                                    && list.iter().any(|iv| {
                                        iv.alive && self.le(iv.from, t) && self.le(t, iv.actual_to)
                                    })
                            }))
                });
                if !waived {
                    tail_block = tail_block.max(t);
                    findings.push(AuditFinding::Violation(Violation::UnservedRequest {
                        request: i,
                        server: s,
                        at: t,
                    }));
                }
            }
        }

        // --- coverage ---------------------------------------------------
        if inst.n() > 0 {
            let anchored = ivs[ServerId::ORIGIN.index()]
                .iter()
                .any(|iv| self.eq(iv.from, 0.0) && iv.actual_to > 0.0);
            if !anchored {
                findings.push(AuditFinding::Violation(Violation::MissingOriginCopy));
            }
            let mut spans: Vec<(f64, f64)> = ivs
                .iter()
                .flatten()
                .filter(|iv| iv.actual_to > iv.from)
                .map(|iv| (iv.from, iv.actual_to))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            let horizon = inst.horizon();
            let mut reach = 0.0f64;
            let mut gap_reported = false;
            for (from, to) in spans {
                if from > reach && !self.eq(from, reach) {
                    // A gap lying inside a total outage is waived: no
                    // policy can hold a copy anywhere over it.
                    if !gap_waived(self.tol, &outages, reach, from) {
                        findings.push(AuditFinding::Violation(Violation::CoverageGap {
                            at: reach,
                        }));
                        gap_reported = true;
                    }
                    // Jump the gap and keep scanning: one report per gap.
                    reach = from;
                }
                reach = reach.max(to);
                if reach >= horizon {
                    break;
                }
            }
            // A trailing gap is also waived when every request past `reach`
            // was deferred into the wrapper's accounted offline queue: the
            // run's last in-schedule obligation ends at `reach`, and the
            // replay of the queue happens against durable storage, outside
            // the schedule.
            let tail_deferred =
                plan.is_some() && (tail_block <= reach || self.eq(tail_block, reach));
            if !gap_reported
                && reach < horizon
                && !self.eq(reach, horizon)
                && !tail_deferred
                && !gap_waived(self.tol, &outages, reach, horizon)
            {
                findings.push(AuditFinding::Violation(Violation::CoverageGap {
                    at: reach,
                }));
            }
        }

        // --- accounting -------------------------------------------------
        if let Some(reported) = reported_cost {
            // The *believed* schedule is what the run charged itself for;
            // drift means the run's own arithmetic disagrees with it. The
            // brownout surcharge is part of the reported cost, so it is
            // recomputed here too — interval terms in (server, start)
            // order, then transfer terms in (time, src, dst) order,
            // exactly as the streaming auditor sums them.
            let mut recomputed = sched.cost(inst.cost());
            if let Some(p) = plan {
                if !p.brownouts().is_empty() {
                    let (mu, lambda) = (inst.cost().mu, inst.cost().lambda);
                    let mut sur = 0.0;
                    for h in &sched.caches {
                        sur += interval_surcharge(p, h.server, h.from, h.to, mu);
                    }
                    for tr in &sched.transfers {
                        sur += transfer_surcharge(p, tr.src, tr.dst, tr.at, lambda);
                    }
                    recomputed += sur;
                }
            }
            if !self.eq(reported, recomputed) {
                findings.push(AuditFinding::CostDrift {
                    reported,
                    recomputed,
                });
            }
        }
        if let Some(recorded) = recorded_transfers {
            let costed = sched.transfers.len();
            if recorded != costed {
                findings.push(AuditFinding::UnpaidTransfers { recorded, costed });
            }
        }

        AuditReport { findings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::{run_policy, SpeculativeCaching};
    use mcc_core::online::{CrashWindow, FaultTolerant};
    use mcc_model::CostModel;

    fn inst() -> Instance<f64> {
        Instance::from_compact("m=3 mu=1 lambda=1 | s2@0.5 s2@0.9 s3@1.4 s1@3.0 s2@3.5").unwrap()
    }

    fn crashy_plan() -> FaultPlan {
        FaultPlan::new(
            vec![
                CrashWindow {
                    server: ServerId(1),
                    from: 1.0,
                    to: 2.0,
                },
                CrashWindow {
                    server: ServerId(0),
                    from: 2.5,
                    to: 4.0,
                },
            ],
            11,
            0.0,
            0,
            0.0,
        )
    }

    #[test]
    fn clean_run_audits_clean() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let report = ScheduleAuditor::default().audit_run(&inst, &run, None);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn agrees_with_model_referee_on_clean_schedules() {
        let inst = inst();
        for policy in [1.0, 2.0, 0.5] {
            let run = run_policy(&mut SpeculativeCaching::with_options(policy, None), &inst);
            let referee = mcc_model::validate_with(
                &inst,
                &run.schedule,
                mcc_model::ValidateOptions { tol: 1e-9 },
            );
            let audit = ScheduleAuditor::default().audit_run(&inst, &run, None);
            assert_eq!(referee.is_ok(), audit.is_clean());
        }
    }

    #[test]
    fn oblivious_run_lights_up_under_fault_replay() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let plan = crashy_plan();
        let report = ScheduleAuditor::default().audit_run(&inst, &run, Some(&plan));
        assert!(
            !report.is_clean(),
            "a fault-oblivious schedule must show violations under crashes"
        );
        assert!(report.findings.iter().any(|f| matches!(
            f,
            AuditFinding::Violation(Violation::CopyLostInCrash { .. })
        )));
    }

    #[test]
    fn wrapped_run_stays_clean_under_fault_replay() {
        let inst = inst();
        let plan = crashy_plan();
        let mut ft = FaultTolerant::new(SpeculativeCaching::<f64>::paper(), plan.clone());
        let run = run_policy(&mut ft, &inst);
        let report = ScheduleAuditor::default().audit_run(&inst, &run, Some(&plan));
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn cost_drift_and_unpaid_transfers_are_reported() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let auditor = ScheduleAuditor::default();
        let drift = auditor.audit(&inst, &run.schedule, Some(run.total_cost + 1.0), None, None);
        assert!(drift
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::CostDrift { .. })));
        let unpaid = auditor.audit(
            &inst,
            &run.schedule,
            None,
            Some(run.record.transfers.len() + 2),
            None,
        );
        assert!(unpaid
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::UnpaidTransfers { .. })));
    }

    #[test]
    fn infeasible_schedule_is_flagged() {
        // A schedule that serves nothing: single origin interval ending
        // before the requests.
        let inst = Instance::<f64>::new(
            2,
            CostModel::unit(),
            vec![mcc_model::Request {
                server: ServerId(1),
                time: 2.0,
            }],
        )
        .unwrap();
        let mut sched = Schedule::new();
        sched.cache(ServerId(0), 0.0, 0.5);
        sched.normalize();
        let report = ScheduleAuditor::default().audit(&inst, &sched, None, None, None);
        assert!(report.violations() >= 2, "{:?}", report.findings); // unserved + gap
    }

    #[test]
    fn findings_display_readably() {
        let f = AuditFinding::CostDrift {
            reported: 3.0,
            recomputed: 4.0,
        };
        assert!(f.to_string().contains("drift"));
        let f = AuditFinding::Violation(Violation::CopyLostInCrash {
            server: ServerId(1),
            at: 1.5,
        });
        assert!(f.to_string().contains("crash"));
    }
}
