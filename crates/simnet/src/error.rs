//! Typed simulation errors.
//!
//! The simnet layer is user-input-reachable (arrival processes, event
//! schedules and sweep configurations all flow in from CLI arguments and
//! workload files), so it must not panic on bad input: every fallible
//! entry point returns a [`SimError`] instead.

use std::fmt;

use mcc_model::ModelError;

/// An error raised by the simulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An event was scheduled at a NaN or negative time.
    BadEventTime {
        /// The offending time.
        time: f64,
    },
    /// An event was scheduled before the current simulation clock.
    EventInPast {
        /// The offending time.
        time: f64,
        /// The simulation clock when the schedule was attempted.
        now: f64,
    },
    /// The arrival process produced a trace the model rejects.
    InvalidTrace(ModelError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadEventTime { time } => {
                write!(f, "event time {time} is not a finite non-negative number")
            }
            SimError::EventInPast { time, now } => {
                write!(f, "cannot schedule an event at {time} before now = {now}")
            }
            SimError::InvalidTrace(e) => {
                write!(f, "arrival process produced an invalid trace: {e}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::InvalidTrace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::BadEventTime { time: f64::NAN };
        assert!(e.to_string().contains("NaN"));
        let e = SimError::EventInPast {
            time: 1.0,
            now: 2.0,
        };
        assert!(e.to_string().contains("before now"));
        let e = SimError::from(ModelError::NoServers);
        assert!(e.to_string().contains("invalid trace"));
    }

    #[test]
    fn is_std_error_with_source() {
        let e = SimError::from(ModelError::NoServers);
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }
}
