//! The simulation engine: drives an online policy from an arrival process
//! through the event queue, sampling live-copy counts as it goes.
//!
//! The engine materializes the requests it generated into an [`Instance`]
//! so the outcome can be compared against the off-line optimum afterwards
//! — the "replay the trace through the DP" step every online experiment
//! performs.

use mcc_core::online::tracker::{RunRecord, Runtime};
use mcc_core::online::{FaultPlan, FaultStats, FaultTolerant, OnlinePolicy, ServeAction};
use mcc_model::{CostModel, Instance, Request, Scalar};

use crate::audit::{AuditReport, ScheduleAuditor};
use crate::error::SimError;
use crate::event::EventQueue;

/// A source of requests revealed one at a time.
pub trait ArrivalProcess {
    /// The next request strictly after `now`, or `None` when the stream
    /// ends.
    fn next_after(&mut self, now: f64) -> Option<Request<f64>>;
}

/// Replays a pre-generated instance.
pub struct Replay<'a> {
    requests: &'a [Request<f64>],
    cursor: usize,
}

impl<'a> Replay<'a> {
    /// Wraps an instance's request slice.
    pub fn new(inst: &'a Instance<f64>) -> Self {
        Replay {
            requests: inst.requests(),
            cursor: 0,
        }
    }
}

impl ArrivalProcess for Replay<'_> {
    fn next_after(&mut self, now: f64) -> Option<Request<f64>> {
        let r = *self.requests.get(self.cursor)?;
        self.cursor += 1;
        debug_assert!(r.time > now, "replayed requests must advance time");
        Some(r)
    }
}

/// Engine configuration.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Number of servers.
    pub servers: usize,
    /// Cost model.
    pub cost: CostModel<f64>,
    /// Stop after this many requests even if the source continues.
    pub max_requests: usize,
}

/// Everything a simulation run produces.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The materialized request trace (feed it to the off-line DP).
    pub instance: Instance<f64>,
    /// Copy/transfer records with speculative tails.
    pub record: RunRecord<f64>,
    /// Per-request serve actions.
    pub actions: Vec<ServeAction>,
    /// `(time, live copies)` sampled at every request event.
    pub live_copy_samples: Vec<(f64, usize)>,
    /// Total online cost.
    pub total_cost: f64,
}

impl SimOutcome {
    /// Peak number of simultaneously live copies observed.
    pub fn peak_copies(&self) -> usize {
        self.live_copy_samples
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
    }
}

/// Internal event alphabet (the queue is exercised even though requests
/// are the only externally visible events; sampling rides on the queue so
/// extensions like link delays slot in naturally).
enum Event {
    Arrival(Request<f64>),
}

/// Runs `policy` against `source` under `config`.
///
/// # Errors
///
/// [`SimError::BadEventTime`] / [`SimError::EventInPast`] when the arrival
/// process emits non-finite, negative or time-reversed request times, and
/// [`SimError::InvalidTrace`] when the accepted trace fails model
/// validation (duplicate times, out-of-range servers).
pub fn simulate<P: OnlinePolicy<f64> + ?Sized>(
    policy: &mut P,
    source: &mut dyn ArrivalProcess,
    config: SimConfig,
) -> Result<SimOutcome, SimError> {
    policy.reset(config.servers, &config.cost);
    let mut rt = Runtime::new(config.servers);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut accepted: Vec<Request<f64>> = Vec::new();
    let mut actions = Vec::new();
    let mut samples = Vec::new();

    if let Some(first) = source.next_after(0.0) {
        queue.schedule(first.time.to_f64(), Event::Arrival(first))?;
    }
    while let Some((now, ev)) = queue.pop() {
        match ev {
            Event::Arrival(req) => {
                if accepted.len() >= config.max_requests {
                    break;
                }
                let action = policy.on_request(req.time, req.server, &mut rt);
                actions.push(action);
                accepted.push(req);
                samples.push((now, rt.live_copies()));
                if accepted.len() < config.max_requests {
                    if let Some(next) = source.next_after(now) {
                        queue.schedule(next.time.to_f64(), Event::Arrival(next))?;
                    }
                }
            }
        }
    }

    let instance = Instance::new(config.servers, config.cost, accepted)?;
    let horizon = instance.horizon();
    let record = if instance.n() == 0 {
        rt.finish(|_, last| last)
    } else {
        rt.finish(|server, last| policy.close_time(server, last, horizon))
    };
    let total_cost = record.to_schedule().cost(&config.cost);
    Ok(SimOutcome {
        instance,
        record,
        actions,
        live_copy_samples: samples,
        total_cost,
    })
}

/// A simulation outcome under fault injection, with its audit attached.
#[derive(Clone, Debug)]
pub struct FaultySimOutcome {
    /// The underlying run (its `total_cost` is the schedule cost only).
    pub outcome: SimOutcome,
    /// The auditor's replay of the run against the fault plan.
    pub audit: AuditReport,
    /// Fault counters (`None` for fault-oblivious runs, which take no
    /// corrective actions and therefore have nothing to count).
    pub stats: Option<FaultStats>,
}

impl FaultySimOutcome {
    /// Schedule cost plus the `λ` retry surcharge for failed transfer
    /// attempts (the surcharge lives outside the schedule).
    pub fn total_cost(&self) -> f64 {
        let surcharge = self.stats.as_ref().map_or(0.0, |s| s.retry_cost);
        self.outcome.total_cost + surcharge
    }
}

/// Runs `policy` against `source` on a cluster degraded by `plan`.
///
/// With `tolerant` the policy is wrapped in [`FaultTolerant`] (crashes
/// repaired, transfers failed over, retries charged); without it the
/// policy runs oblivious to the faults and the audit replays the believed
/// schedule against the plan, reporting every violation the faults induce.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_under_faults<P: OnlinePolicy<f64> + 'static>(
    policy: P,
    source: &mut dyn ArrivalProcess,
    config: SimConfig,
    plan: &FaultPlan,
    tolerant: bool,
) -> Result<FaultySimOutcome, SimError> {
    let auditor = ScheduleAuditor::default();
    if tolerant {
        let mut wrapped = FaultTolerant::new(policy, FaultPlan::none());
        wrapped.set_plan(plan);
        let outcome = simulate(&mut wrapped, source, config)?;
        let audit = auditor.audit_outcome(&outcome, Some(plan));
        Ok(FaultySimOutcome {
            audit,
            stats: Some(wrapped.stats().clone()),
            outcome,
        })
    } else {
        let mut policy = policy;
        let outcome = simulate(&mut policy, source, config)?;
        let audit = auditor.audit_outcome(&outcome, Some(plan));
        Ok(FaultySimOutcome {
            audit,
            stats: None,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::run_policy;
    use mcc_core::online::SpeculativeCaching;

    fn demo_instance() -> Instance<f64> {
        Instance::from_compact("m=3 mu=1 lambda=1 | s2@0.4 s2@0.7 s3@1.0 s1@2.5 s3@2.8").unwrap()
    }

    #[test]
    fn replay_matches_direct_execution() {
        let inst = demo_instance();
        let config = SimConfig {
            servers: inst.servers(),
            cost: *inst.cost(),
            max_requests: usize::MAX,
        };
        let sim = simulate(
            &mut SpeculativeCaching::paper(),
            &mut Replay::new(&inst),
            config,
        )
        .unwrap();
        let direct = run_policy(&mut SpeculativeCaching::paper(), &inst);
        assert_eq!(sim.instance, inst);
        assert!((sim.total_cost - direct.total_cost).abs() < 1e-12);
        assert_eq!(sim.actions, direct.actions);
    }

    #[test]
    fn max_requests_truncates() {
        let inst = demo_instance();
        let config = SimConfig {
            servers: 3,
            cost: *inst.cost(),
            max_requests: 2,
        };
        let sim = simulate(
            &mut SpeculativeCaching::paper(),
            &mut Replay::new(&inst),
            config,
        )
        .unwrap();
        assert_eq!(sim.instance.n(), 2);
        assert_eq!(sim.actions.len(), 2);
    }

    #[test]
    fn live_copies_are_sampled() {
        let inst = demo_instance();
        let config = SimConfig {
            servers: 3,
            cost: *inst.cost(),
            max_requests: usize::MAX,
        };
        let sim = simulate(
            &mut SpeculativeCaching::paper(),
            &mut Replay::new(&inst),
            config,
        )
        .unwrap();
        assert_eq!(sim.live_copy_samples.len(), 5);
        assert!(sim.peak_copies() >= 2);
        // Samples are time-ordered.
        for w in sim.live_copy_samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_source_is_fine() {
        struct Empty;
        impl ArrivalProcess for Empty {
            fn next_after(&mut self, _now: f64) -> Option<Request<f64>> {
                None
            }
        }
        let config = SimConfig {
            servers: 2,
            cost: CostModel::unit(),
            max_requests: 10,
        };
        let sim = simulate(&mut SpeculativeCaching::paper(), &mut Empty, config).unwrap();
        assert_eq!(sim.instance.n(), 0);
        assert_eq!(sim.total_cost, 0.0);
    }
}
