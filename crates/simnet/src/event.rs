//! A deterministic discrete-event queue.
//!
//! Min-heap keyed by `(time, seq)`: ties in time break by insertion order,
//! which keeps simulations reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("no NaN event times")
            .then(other.seq.cmp(&self.seq))
    }
}

/// FIFO-stable min-priority event queue.
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics on NaN times or scheduling in the past (before the last
    /// popped event).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule at {time} before now = {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// The simulation clock (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.peek_time(), Some(2.5));
        q.pop();
        assert_eq!(q.now(), 2.5);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }
}
