//! A deterministic discrete-event queue.
//!
//! Min-heap keyed by `(time, seq)`: ties in time break by insertion order,
//! which keeps simulations reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::SimError;

/// A scheduled event.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        // `total_cmp` is total even on NaN, but NaN never reaches the heap:
        // `schedule` rejects it at insertion.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// FIFO-stable min-priority event queue.
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadEventTime`] for NaN, infinite or negative times;
    /// [`SimError::EventInPast`] for times before the last popped event.
    pub fn schedule(&mut self, time: f64, payload: E) -> Result<(), SimError> {
        if !time.is_finite() || time < 0.0 {
            return Err(SimError::BadEventTime { time });
        }
        if time < self.now {
            return Err(SimError::EventInPast {
                time,
                now: self.now,
            });
        }
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        Ok(())
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// The simulation clock (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c").unwrap();
        q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1).unwrap();
        q.schedule(1.0, 2).unwrap();
        q.schedule(1.0, 3).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ()).unwrap();
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.peek_time(), Some(2.5));
        q.pop();
        assert_eq!(q.now(), 2.5);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ()).unwrap();
        q.pop();
        assert_eq!(
            q.schedule(1.0, ()),
            Err(SimError::EventInPast {
                time: 1.0,
                now: 2.0
            })
        );
        assert!(q.is_empty(), "rejected events are not enqueued");
    }

    #[test]
    fn rejects_nan_negative_and_infinite_times() {
        // Regression: NaN used to reach the heap and blow up in `Ord`
        // (`partial_cmp(..).expect(..)`) long after insertion; it is now a
        // typed error at the `schedule` call.
        let mut q = EventQueue::new();
        for bad in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let err = q.schedule(bad, ()).unwrap_err();
            assert!(
                matches!(err, SimError::BadEventTime { .. }),
                "{bad} -> {err:?}"
            );
        }
        assert!(q.is_empty());
        q.schedule(0.0, ()).unwrap();
        assert_eq!(q.len(), 1);
    }
}
