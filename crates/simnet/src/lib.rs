//! # mcc-simnet — discrete-event simulation substrate
//!
//! The execution environment the online experiments run on: a
//! deterministic event queue, a simulation engine that drives any
//! [`mcc_core::online::OnlinePolicy`] from a live arrival process,
//! post-hoc instrumentation (live-copy timelines, cost attribution), and a
//! deterministic parallel sweep runner for (policy × workload × seed)
//! grids.

#![forbid(unsafe_code)]
// `!(a > b)` is used deliberately where NaN must be rejected alongside
// ordinary failures; `a <= b` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod metrics;
pub mod parallel;
pub mod planned;
pub mod runner;

pub use engine::{simulate, ArrivalProcess, Replay, SimConfig, SimOutcome};
pub use event::EventQueue;
pub use metrics::{Breakdown, CopyTimeline};
pub use parallel::{sweep, CellResult, GridCell};
pub use planned::{execute_plan, plan_and_execute, PlannedOutcome};
pub use runner::{factory, run_cell, run_cell_in, PolicyFactory, SeedResult};
