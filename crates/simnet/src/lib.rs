//! # mcc-simnet — discrete-event simulation substrate
//!
//! The execution environment the online experiments run on: a
//! deterministic event queue, a simulation engine that drives any
//! [`mcc_core::online::OnlinePolicy`] from a live arrival process,
//! post-hoc instrumentation (live-copy timelines, cost attribution), a
//! deterministic parallel sweep runner for (policy × workload × seed)
//! grids, seed-driven fault injection ([`fault`]), and an always-on
//! schedule auditor ([`audit`]) that replays every run against the model
//! invariants (and the fault plan, when there is one).
//!
//! Simulation inputs are user-reachable (traces, CLI parameters), so this
//! crate's non-test code must not panic on them: fallible paths return
//! [`SimError`] and the unwrap/expect lints below are promoted to errors
//! by CI's `-D warnings`.

#![forbid(unsafe_code)]
// `!(a > b)` is used deliberately where NaN must be rejected alongside
// ordinary failures; `a <= b` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod clock;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod parallel;
pub mod planned;
pub mod runner;
pub mod streaming;

pub use audit::{AuditFinding, AuditReport, ScheduleAuditor};
pub use clock::{SimClock, TimeSource, WallClock};
pub use engine::{
    simulate, simulate_under_faults, ArrivalProcess, FaultySimOutcome, Replay, SimConfig,
    SimOutcome,
};
pub use error::SimError;
pub use event::EventQueue;
pub use fault::{FaultSpec, PlanScratch};
pub use metrics::{Breakdown, CopyTimeline, FaultBreakdown};
pub use parallel::{sweep, sweep_with, CellResult, GridCell};
pub use planned::{
    execute_plan, execute_plan_under_faults, plan_and_execute, FaultyPlannedOutcome, PlannedOutcome,
};
pub use runner::{
    factory, fold_fault_stats, FaultOutcome, PolicyFactory, RunMode, RunPolicy, RunRequest,
    RunWorkspace, SeedResult, UnitSource, BATCH_UNITS,
};
pub use streaming::{AuditScratch, StreamingAuditor};
