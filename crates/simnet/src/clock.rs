//! Event-time sources: where "now" comes from.
//!
//! The run pipeline replays recorded request sequences, so its notion of
//! time is the timestamps inside the instance. A live daemon
//! (`mcc-serve`) instead observes *arrivals* and must decide what clock
//! each one carries: the wall clock for real deployments, or a
//! simulated clock driven by the request stream itself for deterministic
//! tests and the serve-vs-replay equivalence property.
//!
//! [`TimeSource`] is that seam. Both implementations are deliberately
//! tiny — the daemon reads the clock once per arrival and once per
//! timer-wheel sweep, nothing else.

use std::cell::Cell;
use std::time::Instant;

/// A monotone source of event time, in the same unit as request
/// timestamps (seconds).
///
/// Implementations need not enforce monotonicity themselves; consumers
/// that require it (the serve engine) clamp or reject regressions at the
/// point of use.
pub trait TimeSource {
    /// Current event time in seconds since the source's origin.
    fn now(&self) -> f64;
}

/// Simulated clock: time is whatever the driver last set it to.
///
/// The serve engine under test advances this clock from the timestamps
/// of the incoming request stream, which makes a daemon run a pure
/// function of the stream — the property the serve-vs-replay equivalence
/// tests rely on. Starts at `0.0`.
#[derive(Debug, Default)]
pub struct SimClock {
    now: Cell<f64>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Moves the clock forward to `t`. Regressions are ignored (the
    /// clock stays put), so feeding timestamps in arrival order keeps
    /// the clock monotone even if the stream jitters.
    pub fn advance_to(&self, t: f64) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }
}

impl TimeSource for SimClock {
    fn now(&self) -> f64 {
        self.now.get()
    }
}

/// Wall clock: seconds elapsed since construction, measured on the OS
/// monotonic clock. This is what a real `mcc serve` deployment runs on.
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(2.5);
        assert_eq!(c.now(), 2.5);
        c.advance_to(1.0); // regression ignored
        assert_eq!(c.now(), 2.5);
        c.advance_to(3.0);
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
