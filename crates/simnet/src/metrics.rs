//! Post-hoc instrumentation derived from run records.

use mcc_core::online::tracker::RunRecord;
use mcc_core::online::FaultStats;
use mcc_model::{CostModel, Scalar};

/// Step function of simultaneously live copies over time.
#[derive(Clone, Debug, Default)]
pub struct CopyTimeline {
    /// `(time, live count)` breakpoints, time-ascending; the count holds
    /// until the next breakpoint.
    pub steps: Vec<(f64, usize)>,
}

impl CopyTimeline {
    /// Builds the timeline from copy records.
    pub fn from_record<S: Scalar>(record: &RunRecord<S>) -> Self {
        let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(record.records.len() * 2);
        for c in &record.records {
            if !(c.to > c.from) {
                continue; // zero-length copies never count
            }
            deltas.push((c.from.to_f64(), 1));
            deltas.push((c.to.to_f64(), -1));
        }
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut steps = Vec::new();
        let mut live: i64 = 0;
        for (t, d) in deltas {
            live += d;
            match steps.last_mut() {
                Some((lt, lc)) if *lt == t => *lc = live as usize,
                _ => steps.push((t, live as usize)),
            }
        }
        CopyTimeline { steps }
    }

    /// Maximum simultaneously live copies.
    pub fn peak(&self) -> usize {
        self.steps.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Time-weighted average copy count over `[0, horizon]`.
    pub fn average(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 || self.steps.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        for (k, &(t, c)) in self.steps.iter().enumerate() {
            let end = self
                .steps
                .get(k + 1)
                .map(|&(t2, _)| t2)
                .unwrap_or(horizon)
                .min(horizon);
            if end > t {
                area += (end - t) * c as f64;
            }
        }
        area / horizon
    }
}

/// Cost attribution of one run.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Caching cost spent on intervals up to each copy's last touch.
    pub useful_caching: f64,
    /// Caching cost spent on speculative tails (`Σ μ·ω`).
    pub speculative_tails: f64,
    /// Transfer cost (`λ·|T|`).
    pub transfers: f64,
}

impl Breakdown {
    /// Computes the attribution from a run record.
    pub fn from_record<S: Scalar>(record: &RunRecord<S>, cost: &CostModel<S>) -> Self {
        let mut useful = 0.0;
        let mut tails = 0.0;
        for c in &record.records {
            useful += cost.caching(c.last_touch - c.from).to_f64();
            tails += cost.caching(c.tail()).to_f64();
        }
        Breakdown {
            useful_caching: useful,
            speculative_tails: tails,
            transfers: cost.lambda.to_f64() * record.transfers.len() as f64,
        }
    }

    /// Total cost.
    pub fn total(&self) -> f64 {
        self.useful_caching + self.speculative_tails + self.transfers
    }
}

/// Report-ready view of one run's fault counters.
///
/// Flattens [`FaultStats`] and attributes the corrective work in the same
/// spirit as [`Breakdown`]: how many copies the faults destroyed, how much
/// corrective action the wrapper took, and what the failed transfer
/// attempts cost on top of the schedule (`λ` per failed attempt).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct FaultBreakdown {
    /// Live copies destroyed by crashes.
    pub copies_lost: usize,
    /// Failed transfer attempts before each success.
    pub retries: usize,
    /// Requests redirected to a surviving replica.
    pub failovers: usize,
    /// Emergency re-replications (including crash-time evacuations).
    pub emergency_replications: usize,
    /// Transfers absorbed by an already-live destination copy.
    pub adopted_replicas: usize,
    /// Serve-and-drop deliveries to servers that were down.
    pub down_serves: usize,
    /// Windows during which the cluster was down to its last copy.
    pub copy_loss_windows: usize,
    /// Requests deferred into the degraded-mode queue.
    pub deferred: usize,
    /// Deferred requests replayed at recovery (or run end).
    pub replayed: usize,
    /// Deferred requests dropped at the queue bound.
    pub dropped: usize,
    /// Peak degraded-mode queue depth.
    pub queue_peak: usize,
    /// Deferrals caused by an active partition rather than an outage.
    pub partition_deferrals: usize,
    /// Copies re-materialized from durable storage after total outages.
    pub reseeds: usize,
    /// Transfers forced through after the retry budget ran dry.
    pub budget_exhausted: usize,
    /// `λ` surcharge paid for the failed attempts.
    pub retry_cost: f64,
    /// `λ` surcharge paid replaying deferred requests.
    pub replay_cost: f64,
    /// `λ` surcharge paid re-seeding after total outages.
    pub reseed_cost: f64,
    /// Brownout `μ/λ` surcharge of the run.
    pub brownout_cost: f64,
    /// Backoff wait accrued (latency metric, not `λ/μ` cost).
    pub backoff_wait: f64,
    /// Total transfer latency injected by the fault plan.
    pub total_delay: f64,
}

impl FaultBreakdown {
    /// Flattens wrapper counters into the report view.
    pub fn from_stats(stats: &FaultStats) -> Self {
        FaultBreakdown {
            copies_lost: stats.copies_lost,
            retries: stats.retries,
            failovers: stats.failovers,
            emergency_replications: stats.emergency_replications,
            adopted_replicas: stats.adopted_replicas,
            down_serves: stats.down_serves,
            copy_loss_windows: stats.copy_loss_windows,
            deferred: stats.deferred,
            replayed: stats.replayed,
            dropped: stats.dropped,
            queue_peak: stats.queue_peak,
            partition_deferrals: stats.partition_deferrals,
            reseeds: stats.reseeds,
            budget_exhausted: stats.budget_exhausted,
            retry_cost: stats.retry_cost,
            replay_cost: stats.replay_cost,
            reseed_cost: stats.reseed_cost,
            brownout_cost: stats.brownout_cost,
            backoff_wait: stats.backoff_wait,
            total_delay: stats.total_delay,
        }
    }

    /// Total corrective actions the wrapper took (failovers, emergency
    /// re-replications and adopted transfers).
    pub fn corrective_actions(&self) -> usize {
        self.failovers + self.emergency_replications + self.adopted_replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::online::tracker::Runtime;
    use mcc_model::ServerId;

    fn demo_record() -> RunRecord<f64> {
        let mut rt = Runtime::<f64>::new(3);
        rt.transfer(ServerId(0), ServerId(1), 1.0); // both live from 1.0
        rt.touch(ServerId(1), 2.0);
        rt.close(ServerId(0), 1.5); // origin [0, 1.5], touch 1.0
        rt.transfer(ServerId(1), ServerId(2), 3.0);
        rt.finish(|_, last| last + 0.5)
    }

    #[test]
    fn timeline_counts_live_copies() {
        let tl = CopyTimeline::from_record(&demo_record());
        assert_eq!(tl.peak(), 2);
        // At t = 0 one copy (origin); from 1.0 two; from 1.5 one; from 3.0
        // two (s^2 + s^3) until the +0.5 tails close.
        assert_eq!(tl.steps.first().map(|&(t, c)| (t, c)), Some((0.0, 1)));
        let at = |t: f64| {
            tl.steps
                .iter()
                .rev()
                .find(|&&(bt, _)| bt <= t)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert_eq!(at(0.5), 1);
        assert_eq!(at(1.2), 2);
        assert_eq!(at(2.0), 1);
        assert_eq!(at(3.2), 2);
        assert_eq!(at(4.0), 0);
    }

    #[test]
    fn timeline_average_is_time_weighted() {
        let tl = CopyTimeline::from_record(&demo_record());
        // Over [0, 3]: 1 copy on [0,1], 2 on [1,1.5], 1 on [1.5,3] →
        // area 1 + 1 + 1.5 = 3.5.
        let avg = tl.average(3.0);
        assert!((avg - 3.5 / 3.0).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn breakdown_attributes_tails() {
        let rec = demo_record();
        let b = Breakdown::from_record(&rec, &CostModel::unit());
        // Tails: origin 0.5, s^1 0.5, s^2 0.5 → 1.5.
        assert!((b.speculative_tails - 1.5).abs() < 1e-9);
        assert_eq!(b.transfers, 2.0);
        let sched_cost = rec.to_schedule().cost(&CostModel::unit());
        assert!((b.total() - sched_cost).abs() < 1e-9);
    }

    #[test]
    fn fault_breakdown_flattens_stats() {
        let stats = FaultStats {
            copies_lost: 3,
            retries: 5,
            failovers: 2,
            emergency_replications: 1,
            adopted_replicas: 4,
            down_serves: 1,
            copy_loss_windows: 2,
            deferred: 7,
            replayed: 5,
            dropped: 2,
            queue_peak: 4,
            reseeds: 1,
            retry_cost: 5.0,
            replay_cost: 2.5,
            total_delay: 0.25,
            ..FaultStats::default()
        };
        let fb = FaultBreakdown::from_stats(&stats);
        assert_eq!(fb.copies_lost, 3);
        assert_eq!(fb.corrective_actions(), 2 + 1 + 4);
        assert_eq!(fb.retry_cost, 5.0);
        assert_eq!(fb.deferred, fb.replayed + fb.dropped);
        assert_eq!(fb.queue_peak, 4);
        assert_eq!(fb.reseeds, 1);
        assert_eq!(fb.replay_cost, 2.5);
        assert_eq!(FaultBreakdown::default().corrective_actions(), 0);
    }

    #[test]
    fn empty_record_is_zero() {
        let rec = RunRecord::<f64>::default();
        assert_eq!(CopyTimeline::from_record(&rec).peak(), 0);
        assert_eq!(
            Breakdown::from_record(&rec, &CostModel::unit()).total(),
            0.0
        );
    }
}
