//! Plan-and-repair execution: run a schedule that was planned for a
//! *predicted* request sequence against the sequence that actually
//! arrives.
//!
//! The paper's off-line algorithm assumes the trajectory is known; in
//! deployment it is predicted, and mispredictions must be absorbed at run
//! time. The repair semantics here are the minimal ones a real service
//! would use:
//!
//! * the planned schedule is executed as committed (its full cost is
//!   paid, including caching that turns out useless);
//! * an actual request already covered by a live planned (or repaired)
//!   copy on its server is free;
//! * otherwise it is served by an emergency transfer (`λ`) from a copy
//!   live at that instant, and the delivered copy is dropped immediately
//!   (conservative: repairs never speculate);
//! * if the plan has run out entirely (no copy live at the request time —
//!   e.g. the actual sequence outlives the predicted horizon), the copy
//!   with the latest planned end is held over, paying `μ` per unit time of
//!   extension.
//!
//! The outcome decomposes into planned cost + repair transfers + holdover
//! caching, so experiments can attribute exactly what misprediction
//! costs.

use mcc_core::offline::optimal_schedule;
use mcc_core::online::FaultPlan;
use mcc_model::{Instance, Scalar, Schedule, ServerId};

/// Cost decomposition of a plan-and-repair execution.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlannedOutcome {
    /// Cost of the committed plan (as scheduled).
    pub planned_cost: f64,
    /// Number of emergency transfers.
    pub repair_transfers: usize,
    /// Cost of emergency transfers (`λ · repairs`).
    pub repair_transfer_cost: f64,
    /// Holdover caching paid past the plan's coverage.
    pub holdover_cost: f64,
    /// Requests served for free by planned coverage.
    pub covered: usize,
}

impl PlannedOutcome {
    /// Total realized cost.
    pub fn total(&self) -> f64 {
        self.planned_cost + self.repair_transfer_cost + self.holdover_cost
    }
}

/// Executes `plan` (built for some predicted sequence) against the
/// `actual` instance.
///
/// # Panics
///
/// Panics if the plan has no initial copy anchoring coverage at `t = 0`
/// (any schedule produced by the off-line solvers qualifies).
pub fn execute_plan<S: Scalar>(plan: &Schedule<S>, actual: &Instance<S>) -> PlannedOutcome {
    let cost = actual.cost();
    let planned_cost = plan.cost(cost).to_f64();
    let lambda = cost.lambda.to_f64();
    let mu = cost.mu.to_f64();

    // The latest-ending planned interval seeds the holdover chain.
    let (holdover_server, mut coverage_end) = plan
        .caches
        .iter()
        .map(|h| (h.server, h.to.to_f64()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((ServerId::ORIGIN, 0.0));
    let mut holdover_cost = 0.0;

    let mut repair_transfers = 0usize;
    let mut covered = 0usize;

    for i in 1..=actual.n() {
        let t = actual.t(i).to_f64();
        let s = actual.server(i);

        // Covered if a planned copy lives on s at t, or a planned delivery
        // (transfer) arrives exactly then — a correctly predicted request
        // served by a serve-and-drop transfer leaves no interval behind.
        let live_on_s = plan
            .caches
            .iter()
            .any(|h| h.server == s && h.from.to_f64() <= t && t <= h.to.to_f64())
            || plan
                .transfers
                .iter()
                .any(|tr| tr.dst == s && (tr.at.to_f64() - t).abs() <= 1e-9)
            || (s == holdover_server && t <= coverage_end);
        if live_on_s {
            covered += 1;
            continue;
        }
        // Emergency transfer: does any copy live at t?
        let any_live = plan
            .caches
            .iter()
            .any(|h| h.from.to_f64() <= t && t <= h.to.to_f64())
            || t <= coverage_end;
        if !any_live {
            // Plan exhausted: hold the last copy over until now.
            debug_assert!(t > coverage_end);
            holdover_cost += mu * (t - coverage_end);
            coverage_end = t;
        }
        // The delivered repair copy is dropped immediately; the holdover
        // chain stays on the latest-ending planned copy.
        repair_transfers += 1;
    }

    PlannedOutcome {
        planned_cost,
        repair_transfers,
        repair_transfer_cost: lambda * repair_transfers as f64,
        holdover_cost,
        covered,
    }
}

/// Cost decomposition of a plan executed on a crash-degraded cluster.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultyPlannedOutcome {
    /// Plan-and-repair decomposition over the *actualized* schedule (the
    /// committed plan after crash truncation and dead-transfer removal).
    pub base: PlannedOutcome,
    /// Planned intervals cut short or stillborn because of crashes.
    pub copies_lost: usize,
    /// Planned transfers dropped (source down or already dead).
    pub dropped_transfers: usize,
    /// `λ` surcharge for failed repair-transfer attempts.
    pub retry_cost: f64,
}

impl FaultyPlannedOutcome {
    /// Total realized cost including the retry surcharge.
    pub fn total(&self) -> f64 {
        self.base.total() + self.retry_cost
    }
}

/// Executes `plan` against `actual` on a cluster degraded by `faults`.
///
/// The committed plan is first *actualized* against the crash windows,
/// with the same degradation semantics the auditor replays:
///
/// * an interval starting while its server is down is stillborn;
/// * an interval spanning a crash start is truncated there (`μ` stops
///   accruing when the copy is destroyed — a dead server's cache is not
///   billed);
/// * transfers are replayed in time order: one departing a server
///   strictly inside an outage, or whose source interval no longer covers
///   its departure, is dropped, and the interval it would have delivered
///   dies with it (cascade).
///
/// Repairs then run exactly as in [`execute_plan`] against the actualized
/// coverage, except each emergency transfer additionally pays the fault
/// plan's deterministic failed-attempt surcharge (`λ` per failed
/// attempt). The holdover chain is assumed re-homeable at no extra cost —
/// it models "keep the item somewhere", not a specific server's disk.
pub fn execute_plan_under_faults(
    plan: &Schedule<f64>,
    actual: &Instance<f64>,
    faults: &FaultPlan,
) -> FaultyPlannedOutcome {
    let (actualized, copies_lost, dropped_transfers) = actualize(plan, faults);
    let cost = actual.cost();
    let lambda = cost.lambda;

    // Repair pass mirrors `execute_plan`, with the retry surcharge added
    // per emergency transfer. Reuse its decomposition for everything else
    // so the two paths cannot drift.
    let base = execute_plan(&actualized, actual);
    let mut retry_cost = 0.0;
    let mut budget_left = faults.retry_budget();
    if base.repair_transfers > 0 {
        let (holdover_server, mut coverage_end) = actualized
            .caches
            .iter()
            .map(|h| (h.server, h.to))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((ServerId::ORIGIN, 0.0));
        for i in 1..=actual.n() {
            let t = actual.t(i);
            let s = actual.server(i);
            let covered = actualized
                .caches
                .iter()
                .any(|h| h.server == s && h.from <= t && t <= h.to)
                || actualized
                    .transfers
                    .iter()
                    .any(|tr| tr.dst == s && (tr.at - t).abs() <= 1e-9)
                || (s == holdover_server && t <= coverage_end);
            if covered {
                continue;
            }
            let any_live =
                actualized.caches.iter().any(|h| h.from <= t && t <= h.to) || t <= coverage_end;
            if !any_live {
                coverage_end = t; // mirrors execute_plan's holdover step
            }
            // Same deterministic draw the online wrapper uses; repairs are
            // sourced from wherever the item lives, keyed on the origin,
            // and share one per-run retry budget with the wrapper's rule.
            let draw = faults.draw_failures(ServerId::ORIGIN, s, t, budget_left);
            budget_left -= draw.failures;
            retry_cost += lambda * f64::from(draw.failures);
        }
    }

    FaultyPlannedOutcome {
        base,
        copies_lost,
        dropped_transfers,
        retry_cost,
    }
}

/// Applies crash truncation and dead-transfer removal to a committed
/// plan. Returns the surviving schedule plus loss counters.
fn actualize(plan: &Schedule<f64>, faults: &FaultPlan) -> (Schedule<f64>, usize, usize) {
    let mut caches = plan.caches.clone();
    let mut copies_lost = 0usize;
    for h in caches.iter_mut() {
        if h.to > h.from && faults.is_down(h.server, h.from) {
            h.to = h.from; // stillborn: created into an outage
            copies_lost += 1;
            continue;
        }
        let cut = faults
            .crashes()
            .iter()
            .find(|w| w.server == h.server && w.from > h.from && w.from < h.to);
        if let Some(w) = cut {
            h.to = w.from;
            copies_lost += 1;
        }
    }

    let mut order: Vec<usize> = (0..plan.transfers.len()).collect();
    order.sort_by(|&a, &b| plan.transfers[a].at.total_cmp(&plan.transfers[b].at));
    let mut kept = Vec::with_capacity(plan.transfers.len());
    let mut dropped = 0usize;
    for idx in order {
        let tr = plan.transfers[idx];
        let src_down = faults
            .crashes()
            .iter()
            .any(|w| w.server == tr.src && tr.at > w.from && tr.at < w.to);
        let src_alive = caches.iter().any(|h| {
            h.server == tr.src
                && h.from <= tr.at
                && tr.at <= h.to
                && (h.from < tr.at || (tr.src == ServerId::ORIGIN && h.from == 0.0))
        });
        if src_down || !src_alive {
            dropped += 1;
            // The interval this transfer would have seeded dies with it.
            if let Some(h) = caches
                .iter_mut()
                .find(|h| h.server == tr.dst && (h.from - tr.at).abs() <= 1e-9 && h.to > h.from)
            {
                h.to = h.from;
                copies_lost += 1;
            }
        } else {
            kept.push(tr);
        }
    }

    let mut sched = Schedule {
        caches,
        transfers: kept,
    };
    sched.normalize();
    (sched, copies_lost, dropped)
}

/// Convenience for experiments: plan optimally for `predicted`, execute
/// against `actual`.
pub fn plan_and_execute<S: Scalar>(
    predicted: &Instance<S>,
    actual: &Instance<S>,
) -> PlannedOutcome {
    let (plan, _) = optimal_schedule(predicted);
    execute_plan(&plan, actual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_model::Instance;

    fn inst(text: &str) -> Instance<f64> {
        Instance::from_compact(text).unwrap()
    }

    #[test]
    fn perfect_prediction_costs_exactly_opt() {
        let actual = inst("m=3 mu=1 lambda=1 | s2@0.5 s3@0.8 s2@1.1 s1@2.0");
        let out = plan_and_execute(&actual, &actual);
        let opt = mcc_core::offline::optimal_cost(&actual);
        assert_eq!(out.repair_transfers, 0);
        assert_eq!(out.holdover_cost, 0.0);
        assert_eq!(out.covered, 4);
        assert!((out.total() - opt).abs() < 1e-9);
    }

    #[test]
    fn wrong_location_triggers_one_repair() {
        // Plan expects s^2 at 0.5; reality asks s^3.
        let predicted = inst("m=3 mu=1 lambda=1 | s2@0.5");
        let actual = inst("m=3 mu=1 lambda=1 | s3@0.5");
        let out = plan_and_execute(&predicted, &actual);
        assert_eq!(out.repair_transfers, 1);
        assert_eq!(out.covered, 0);
        // Planned: hold origin [0, .5] + transfer = 1.5; repair λ = 1.
        assert!((out.total() - 2.5).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn outliving_the_plan_pays_holdover() {
        let predicted = inst("m=2 mu=1 lambda=1 | s1@1.0");
        // Reality keeps requesting long after the predicted horizon.
        let actual = inst("m=2 mu=1 lambda=1 | s1@1.0 s2@4.0");
        let out = plan_and_execute(&predicted, &actual);
        // Plan: origin [0, 1] (cost 1). r_2 at t=4 on s^2: plan exhausted →
        // hold origin 1→4 (3) + repair transfer (1).
        assert_eq!(out.repair_transfers, 1);
        assert!((out.holdover_cost - 3.0).abs() < 1e-9);
        assert!((out.total() - 5.0).abs() < 1e-9, "{out:?}");
        assert_eq!(out.covered, 1);
    }

    #[test]
    fn trivial_fault_plan_leaves_execution_unchanged() {
        let predicted = inst("m=3 mu=1 lambda=1 | s2@0.5 s3@0.8 s2@1.1");
        let actual = inst("m=3 mu=1 lambda=1 | s2@0.5 s3@0.9 s2@1.1");
        let (plan, _) = optimal_schedule(&predicted);
        let plain = execute_plan(&plan, &actual);
        let faulty = execute_plan_under_faults(&plan, &actual, &FaultPlan::none());
        assert_eq!(faulty.base, plain);
        assert_eq!(faulty.copies_lost, 0);
        assert_eq!(faulty.dropped_transfers, 0);
        assert_eq!(faulty.retry_cost, 0.0);
        assert!((faulty.total() - plain.total()).abs() < 1e-12);
    }

    #[test]
    fn crash_truncates_planned_coverage_and_forces_repairs() {
        use mcc_core::online::CrashWindow;
        use mcc_model::ServerId;
        // Plan: hold the origin copy over [0, 3] serving s^1 throughout.
        let mut plan = Schedule::new();
        plan.cache(ServerId::ORIGIN, 0.0, 3.0);
        let actual = inst("m=2 mu=1 lambda=1 | s1@1.0 s1@2.5");
        // Origin crashes at t = 2: the interval is cut there, so the
        // request at 2.5 loses its planned coverage.
        let faults = FaultPlan::new(
            vec![CrashWindow {
                server: ServerId::ORIGIN,
                from: 2.0,
                to: 2.2,
            }],
            1,
            0.0,
            0,
            0.0,
        );
        let out = execute_plan_under_faults(&plan, &actual, &faults);
        assert_eq!(out.copies_lost, 1);
        // Actualized plan costs μ·2 instead of μ·3; the uncovered request
        // pays a holdover extension (2 → 2.5) plus a repair transfer.
        assert_eq!(out.base.repair_transfers, 1);
        assert!((out.base.planned_cost - 2.0).abs() < 1e-9, "{out:?}");
        assert!((out.base.holdover_cost - 0.5).abs() < 1e-9, "{out:?}");
        assert!((out.total() - 3.5).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn dead_transfer_cascades_to_its_delivered_interval() {
        use mcc_core::online::CrashWindow;
        use mcc_model::ServerId;
        // Origin seeds s^2 (= ServerId(1)) at t = 1; the delivered copy
        // runs [1, 2].
        let mut plan = Schedule::new();
        plan.cache(ServerId::ORIGIN, 0.0, 1.5);
        plan.cache(ServerId(1), 1.0, 2.0);
        plan.transfer(ServerId::ORIGIN, ServerId(1), 1.0);
        let actual = inst("m=2 mu=1 lambda=1 | s2@1.5");
        // Origin is down across the transfer instant → the transfer and
        // the s^2 interval both die; origin's own interval is stillborn?
        // No — it *starts* before the outage, so it is truncated at 0.8.
        let faults = FaultPlan::new(
            vec![CrashWindow {
                server: ServerId::ORIGIN,
                from: 0.8,
                to: 1.2,
            }],
            1,
            0.0,
            0,
            0.0,
        );
        let out = execute_plan_under_faults(&plan, &actual, &faults);
        assert_eq!(out.dropped_transfers, 1);
        assert_eq!(out.copies_lost, 2, "source truncated + delivery killed");
        assert_eq!(out.base.repair_transfers, 1);
    }

    #[test]
    fn realized_cost_is_bounded_below_by_opt() {
        let predicted = inst("m=3 mu=1 lambda=1 | s2@0.5 s2@1.0 s3@1.5");
        let actual = inst("m=3 mu=1 lambda=1 | s3@0.5 s2@1.0 s2@1.5");
        let out = plan_and_execute(&predicted, &actual);
        let opt = mcc_core::offline::optimal_cost(&actual);
        assert!(out.total() >= opt - 1e-9, "{} < {}", out.total(), opt);
        assert!(out.repair_transfers >= 1);
    }
}
