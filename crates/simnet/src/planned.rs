//! Plan-and-repair execution: run a schedule that was planned for a
//! *predicted* request sequence against the sequence that actually
//! arrives.
//!
//! The paper's off-line algorithm assumes the trajectory is known; in
//! deployment it is predicted, and mispredictions must be absorbed at run
//! time. The repair semantics here are the minimal ones a real service
//! would use:
//!
//! * the planned schedule is executed as committed (its full cost is
//!   paid, including caching that turns out useless);
//! * an actual request already covered by a live planned (or repaired)
//!   copy on its server is free;
//! * otherwise it is served by an emergency transfer (`λ`) from a copy
//!   live at that instant, and the delivered copy is dropped immediately
//!   (conservative: repairs never speculate);
//! * if the plan has run out entirely (no copy live at the request time —
//!   e.g. the actual sequence outlives the predicted horizon), the copy
//!   with the latest planned end is held over, paying `μ` per unit time of
//!   extension.
//!
//! The outcome decomposes into planned cost + repair transfers + holdover
//! caching, so experiments can attribute exactly what misprediction
//! costs.

use mcc_core::offline::optimal_schedule;
use mcc_model::{Instance, Scalar, Schedule, ServerId};

/// Cost decomposition of a plan-and-repair execution.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlannedOutcome {
    /// Cost of the committed plan (as scheduled).
    pub planned_cost: f64,
    /// Number of emergency transfers.
    pub repair_transfers: usize,
    /// Cost of emergency transfers (`λ · repairs`).
    pub repair_transfer_cost: f64,
    /// Holdover caching paid past the plan's coverage.
    pub holdover_cost: f64,
    /// Requests served for free by planned coverage.
    pub covered: usize,
}

impl PlannedOutcome {
    /// Total realized cost.
    pub fn total(&self) -> f64 {
        self.planned_cost + self.repair_transfer_cost + self.holdover_cost
    }
}

/// Executes `plan` (built for some predicted sequence) against the
/// `actual` instance.
///
/// # Panics
///
/// Panics if the plan has no initial copy anchoring coverage at `t = 0`
/// (any schedule produced by the off-line solvers qualifies).
pub fn execute_plan<S: Scalar>(plan: &Schedule<S>, actual: &Instance<S>) -> PlannedOutcome {
    let cost = actual.cost();
    let planned_cost = plan.cost(cost).to_f64();
    let lambda = cost.lambda.to_f64();
    let mu = cost.mu.to_f64();

    // The latest-ending planned interval seeds the holdover chain.
    let (holdover_server, mut coverage_end) = plan
        .caches
        .iter()
        .map(|h| (h.server, h.to.to_f64()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
        .unwrap_or((ServerId::ORIGIN, 0.0));
    let mut holdover_cost = 0.0;

    let mut repair_transfers = 0usize;
    let mut covered = 0usize;

    for i in 1..=actual.n() {
        let t = actual.t(i).to_f64();
        let s = actual.server(i);

        // Covered if a planned copy lives on s at t, or a planned delivery
        // (transfer) arrives exactly then — a correctly predicted request
        // served by a serve-and-drop transfer leaves no interval behind.
        let live_on_s = plan
            .caches
            .iter()
            .any(|h| h.server == s && h.from.to_f64() <= t && t <= h.to.to_f64())
            || plan
                .transfers
                .iter()
                .any(|tr| tr.dst == s && (tr.at.to_f64() - t).abs() <= 1e-9)
            || (s == holdover_server && t <= coverage_end);
        if live_on_s {
            covered += 1;
            continue;
        }
        // Emergency transfer: does any copy live at t?
        let any_live = plan
            .caches
            .iter()
            .any(|h| h.from.to_f64() <= t && t <= h.to.to_f64())
            || t <= coverage_end;
        if !any_live {
            // Plan exhausted: hold the last copy over until now.
            debug_assert!(t > coverage_end);
            holdover_cost += mu * (t - coverage_end);
            coverage_end = t;
        }
        // The delivered repair copy is dropped immediately; the holdover
        // chain stays on the latest-ending planned copy.
        repair_transfers += 1;
    }

    PlannedOutcome {
        planned_cost,
        repair_transfers,
        repair_transfer_cost: lambda * repair_transfers as f64,
        holdover_cost,
        covered,
    }
}

/// Convenience for experiments: plan optimally for `predicted`, execute
/// against `actual`.
pub fn plan_and_execute<S: Scalar>(
    predicted: &Instance<S>,
    actual: &Instance<S>,
) -> PlannedOutcome {
    let (plan, _) = optimal_schedule(predicted);
    execute_plan(&plan, actual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_model::Instance;

    fn inst(text: &str) -> Instance<f64> {
        Instance::from_compact(text).unwrap()
    }

    #[test]
    fn perfect_prediction_costs_exactly_opt() {
        let actual = inst("m=3 mu=1 lambda=1 | s2@0.5 s3@0.8 s2@1.1 s1@2.0");
        let out = plan_and_execute(&actual, &actual);
        let opt = mcc_core::offline::optimal_cost(&actual);
        assert_eq!(out.repair_transfers, 0);
        assert_eq!(out.holdover_cost, 0.0);
        assert_eq!(out.covered, 4);
        assert!((out.total() - opt).abs() < 1e-9);
    }

    #[test]
    fn wrong_location_triggers_one_repair() {
        // Plan expects s^2 at 0.5; reality asks s^3.
        let predicted = inst("m=3 mu=1 lambda=1 | s2@0.5");
        let actual = inst("m=3 mu=1 lambda=1 | s3@0.5");
        let out = plan_and_execute(&predicted, &actual);
        assert_eq!(out.repair_transfers, 1);
        assert_eq!(out.covered, 0);
        // Planned: hold origin [0, .5] + transfer = 1.5; repair λ = 1.
        assert!((out.total() - 2.5).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn outliving_the_plan_pays_holdover() {
        let predicted = inst("m=2 mu=1 lambda=1 | s1@1.0");
        // Reality keeps requesting long after the predicted horizon.
        let actual = inst("m=2 mu=1 lambda=1 | s1@1.0 s2@4.0");
        let out = plan_and_execute(&predicted, &actual);
        // Plan: origin [0, 1] (cost 1). r_2 at t=4 on s^2: plan exhausted →
        // hold origin 1→4 (3) + repair transfer (1).
        assert_eq!(out.repair_transfers, 1);
        assert!((out.holdover_cost - 3.0).abs() < 1e-9);
        assert!((out.total() - 5.0).abs() < 1e-9, "{out:?}");
        assert_eq!(out.covered, 1);
    }

    #[test]
    fn realized_cost_is_bounded_below_by_opt() {
        let predicted = inst("m=3 mu=1 lambda=1 | s2@0.5 s2@1.0 s3@1.5");
        let actual = inst("m=3 mu=1 lambda=1 | s3@0.5 s2@1.0 s2@1.5");
        let out = plan_and_execute(&predicted, &actual);
        let opt = mcc_core::offline::optimal_cost(&actual);
        assert!(out.total() >= opt - 1e-9, "{} < {}", out.total(), opt);
        assert!(out.repair_transfers >= 1);
    }
}
