//! Single-pass streaming auditor: the replay auditor's checks, folded
//! into one chronological sweep over the raw [`RunRecord`].
//!
//! [`crate::audit::ScheduleAuditor`] materializes a normalized
//! [`mcc_model::Schedule`], builds per-server interval indexes and
//! replays crashes/transfers/requests against them. That costs several
//! allocations and two extra passes per seed — about half the sweep hot
//! path before this module existed. [`StreamingAuditor`] performs the
//! same checks in one merged scan over four already-sorted event streams
//! (copy records by start time, transfers by instant, requests by
//! arrival, crash windows by onset), carrying one small state per
//! server instead of interval lists. All storage lives in a caller-owned
//! [`AuditScratch`], so a warm audit performs **zero heap allocations**.
//!
//! # Equivalence with the replay auditor
//!
//! For every run the pipeline can produce, the streaming pass yields the
//! same multiset of [`AuditFinding`]s as
//! `ScheduleAuditor::audit(inst, &rec.to_schedule(), …)` (property-tested
//! in `tests/audit_equivalence.rs`; the replay auditor remains available
//! as the exhaustive debug mode). Finding *order* may differ — the
//! replay groups findings by check, the stream emits them by time.
//!
//! The equivalence holds under the preconditions the runtime guarantees
//! (and the generators preserve):
//!
//! * record times are finite and non-negative, `last_touch`/`to` ordered —
//!   [`mcc_core::online::Runtime`] asserts this while recording;
//! * per-server copy records are chronological and transfers arrive in
//!   non-decreasing time order (runtime time never goes backwards);
//! * per-server crash windows do not overlap (the generator draws
//!   alternating outage/uptime spans);
//! * independent continuous event times never collide within the `1e-9`
//!   relative tolerance unless they are exactly equal (seed-driven
//!   exponential/uniform draws make sub-tolerance near-misses a
//!   measure-zero event; exact ties — e.g. a copy handed over at the
//!   very instant a crash starts — are handled by the event priority
//!   and the pending-crash slot below).
//!
//! Outside those preconditions (hand-built records with overlapping
//! windows or sub-tolerance near-ties) the two auditors may disagree on
//! tolerance-boundary corners; the replay auditor is the arbiter there.

use mcc_core::online::{CrashWindow, FaultPlan, RunRecord};
use mcc_model::{Instance, ServerId, Violation};

use crate::audit::{
    gap_waived, grounded_start, interval_surcharge, outage_covers, transfer_surcharge,
    AuditFinding, AuditReport,
};

/// Per-server incremental audit state: the *current* (latest) merged
/// cache interval plus the provenance/outage context needed to judge the
/// next event.
///
/// Crash-death (`stillborn`/`truncated`) and transfer-death (`killed`)
/// are tracked separately on purpose: the replay auditor applies *all*
/// crash truncations before it replays any transfer, so an interval
/// killed by an invalid delivering transfer still collects crash
/// findings from later outage onsets. The crash checks therefore read
/// `crash_actual_to` (kill-independent), while service, transfer-source
/// and coverage checks read the effective end (`from` once killed).
#[derive(Copy, Clone, Debug)]
struct SrvState {
    /// Whether a current interval exists.
    has: bool,
    /// Start of the current merged interval.
    from: f64,
    /// Believed end (grows as seamless records merge in).
    to: f64,
    /// End surviving the crash replay (`≤ to`), ignoring transfer kills.
    crash_actual_to: f64,
    /// Created at/inside an outage with positive length (crash-dead).
    stillborn: bool,
    /// Killed by its invalid delivering transfer (transfer-dead).
    killed: bool,
    /// True once truncated at a crash onset (`crash_actual_to` frozen).
    truncated: bool,
    /// Crash onset at/after the current believed end: if a later record
    /// merges the interval past it, the truncation applies retroactively.
    pending_crash: Option<f64>,
    /// Justified as a durable-storage reseed (see
    /// [`crate::audit`]'s `grounded_start`): needs no incoming transfer
    /// and may source same-instant transfers.
    grounded: bool,
    /// Believed end of the previous merged interval (continuation check).
    prev_to: f64,
    /// Whether `prev_to` is meaningful.
    has_prev: bool,
    /// Latest crash window seen on this server (`[down_from, down_to)`).
    down_from: f64,
    down_to: f64,
}

impl SrvState {
    /// End of the interval as service/coverage see it.
    fn effective_to(&self) -> f64 {
        if self.killed || self.stillborn {
            self.from
        } else {
            self.crash_actual_to
        }
    }

    /// Whether the copy is live at all (for service/source checks).
    fn alive(&self) -> bool {
        self.has && !self.stillborn && !self.killed
    }
}

impl Default for SrvState {
    fn default() -> Self {
        SrvState {
            has: false,
            from: 0.0,
            to: 0.0,
            crash_actual_to: 0.0,
            stillborn: false,
            killed: false,
            truncated: false,
            pending_crash: None,
            grounded: false,
            prev_to: 0.0,
            has_prev: false,
            down_from: f64::NEG_INFINITY,
            down_to: f64::NEG_INFINITY,
        }
    }
}

/// Reusable storage for [`StreamingAuditor::audit_record_in`].
///
/// Holds per-server states, incoming/delivered transfer-time indexes,
/// coverage spans and the findings buffer. Sized on first use; a warm
/// audit of a same-shaped run allocates nothing.
#[derive(Default, Debug)]
pub struct AuditScratch {
    srv: Vec<SrvState>,
    incoming: Vec<Vec<f64>>,
    delivered: Vec<Vec<f64>>,
    spans: Vec<(f64, f64)>,
    /// `(server, from, believed to)` per merged interval, for the cost
    /// recompute in the replay auditor's summation order.
    costs: Vec<(usize, f64, f64)>,
    /// Event/depth buffers for [`FaultPlan::total_outages_into`].
    outage_events: Vec<(f64, u8, u32)>,
    outage_depth: Vec<u32>,
    /// Total-outage spans of the current plan (empty without a plan).
    outages: Vec<(f64, f64)>,
    /// `(at, src, dst)` per transfer, sorted like a normalized schedule's
    /// transfer list, for the brownout surcharge summation order.
    tr_order: Vec<(f64, u32, u32)>,
    findings: Vec<AuditFinding>,
}

impl AuditScratch {
    /// Clears all buffers and sizes the per-server tables.
    fn reset(&mut self, servers: usize) {
        self.srv.clear();
        self.srv.resize(servers, SrvState::default());
        for list in &mut self.incoming {
            list.clear();
        }
        for list in &mut self.delivered {
            list.clear();
        }
        if self.incoming.len() < servers {
            self.incoming.resize_with(servers, Vec::new);
        }
        if self.delivered.len() < servers {
            self.delivered.resize_with(servers, Vec::new);
        }
        self.spans.clear();
        self.costs.clear();
        self.outages.clear();
        self.tr_order.clear();
        self.findings.clear();
    }
}

/// Audits raw run records in one chronological pass (see module docs).
#[derive(Copy, Clone, Debug)]
pub struct StreamingAuditor {
    /// Relative/absolute time-matching tolerance (see
    /// `mcc_model::Scalar::approx_eq`).
    pub tol: f64,
}

impl Default for StreamingAuditor {
    fn default() -> Self {
        StreamingAuditor { tol: 1e-9 }
    }
}

/// Event tags, in tie-breaking priority order at equal times: a crash
/// takes hold before anything else at its onset instant, copies open
/// before the transfers that justify same-instant deliveries elsewhere,
/// and requests are served last (a transfer *at* the request instant
/// counts).
const TAG_CRASH: u8 = 0;
const TAG_OPEN: u8 = 1;
const TAG_TRANSFER: u8 = 2;
const TAG_REQUEST: u8 = 3;

impl StreamingAuditor {
    /// Approximate time equality, matching the model referee's rule.
    fn eq(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        (a - b).abs() <= self.tol * a.abs().max(b.abs()).max(1.0)
    }

    fn le(&self, a: f64, b: f64) -> bool {
        a <= b || self.eq(a, b)
    }

    fn has_time(&self, list: &[f64], at: f64) -> bool {
        let i = list.partition_point(|&x| x < at);
        (i < list.len() && self.eq(list[i], at)) || (i > 0 && self.eq(list[i - 1], at))
    }

    /// Closes out a server's current merged interval: coverage span, cost
    /// contribution, origin anchor, continuation bookkeeping.
    fn finalize_interval(
        &self,
        st: &mut SrvState,
        s: usize,
        spans: &mut Vec<(f64, f64)>,
        costs: &mut Vec<(usize, f64, f64)>,
        anchored: &mut bool,
    ) {
        if !st.has {
            return;
        }
        let eff = st.effective_to();
        if eff > st.from {
            spans.push((st.from, eff));
        }
        costs.push((s, st.from, st.to));
        if s == ServerId::ORIGIN.index() && self.eq(st.from, 0.0) && eff > 0.0 {
            *anchored = true;
        }
        st.prev_to = st.to;
        st.has_prev = true;
    }

    /// Streaming audit of a raw run record; returns the findings slice
    /// borrowed from `scratch` (empty for a clean run).
    ///
    /// Mirrors [`crate::audit::ScheduleAuditor::audit`] applied to
    /// `rec.to_schedule()`: `reported_cost`/`recorded_transfers` enable
    /// the accounting checks, `plan` enables the fault replay.
    pub fn audit_record_in<'a>(
        &self,
        inst: &Instance<f64>,
        rec: &RunRecord<f64>,
        reported_cost: Option<f64>,
        recorded_transfers: Option<usize>,
        plan: Option<&FaultPlan>,
        scratch: &'a mut AuditScratch,
    ) -> &'a [AuditFinding] {
        let servers = inst.servers();
        scratch.reset(servers);
        let AuditScratch {
            srv,
            incoming,
            delivered,
            spans,
            costs,
            outage_events,
            outage_depth,
            outages,
            tr_order,
            findings,
        } = scratch;

        // Total-outage windows of the plan (see the replay auditor): the
        // waiver and grounding rules below all read from this one list.
        if let Some(plan) = plan {
            plan.total_outages_into(servers, outage_events, outage_depth, outages);
        }

        // --- structural: malformed merged intervals stop the audit ------
        // Normalization drops empty records and merges seamless ones, so
        // the malformed check must run on *merged* geometry to match the
        // replay. Reuse the per-server states for a cheap pre-merge.
        let mut malformed = false;
        {
            let mut check = |server: ServerId, from: f64, to: f64| {
                if from < 0.0 || !from.is_finite() || !to.is_finite() {
                    findings.push(AuditFinding::Violation(Violation::MalformedInterval {
                        server,
                        from,
                        to,
                    }));
                    malformed = true;
                }
            };
            for r in &rec.records {
                if !(r.to > r.from) {
                    continue; // dropped by normalization
                }
                let s = r.server.index();
                if s >= servers {
                    // Out-of-range servers never merge in practice
                    // (unreachable through the runtime); check directly.
                    check(r.server, r.from, r.to);
                    continue;
                }
                let st = &mut srv[s];
                if st.has && r.from <= st.to {
                    st.to = st.to.max(r.to);
                } else {
                    if st.has {
                        check(r.server, st.from, st.to);
                    }
                    st.has = true;
                    st.from = r.from;
                    st.to = r.to;
                }
            }
            for (s, st) in srv.iter_mut().enumerate() {
                if st.has {
                    check(ServerId::from_index(s), st.from, st.to);
                }
                *st = SrvState::default();
            }
        }
        if malformed {
            return findings;
        }

        // Overlap findings cannot arise on merged geometry (an overlap is
        // merged away), exactly as in the replay auditor — skipped.

        // All incoming transfer times per destination, for provenance.
        // The runtime emits transfers in non-decreasing time order, so
        // the lists are already sorted for binary search.
        for tr in &rec.transfers {
            if tr.dst.index() < servers {
                incoming[tr.dst.index()].push(tr.at);
            }
        }
        debug_assert!(incoming.iter().all(|l| l.windows(2).all(|w| w[0] <= w[1])));

        // --- the merged chronological sweep -----------------------------
        let records = &rec.records;
        let transfers = &rec.transfers;
        let no_crashes: &[CrashWindow] = &[];
        let crashes = plan.map_or(no_crashes, |p| p.crashes());
        let n = inst.n();
        let mut anchored = false;
        // Latest request that pins the coverage obligation: one served
        // in-schedule, or one unserved without a deferral waiver. Requests
        // past it were all absorbed by the wrapper's offline queue, so the
        // schedule owes no coverage beyond the last covered instant.
        let mut tail_block = f64::NEG_INFINITY;
        let (mut ri, mut ti, mut qi, mut ci) = (0usize, 0usize, 1usize, 0usize);
        loop {
            // Skip empty records (dropped by normalization).
            while ri < records.len() && !(records[ri].to > records[ri].from) {
                ri += 1;
            }
            let mut pick: Option<(f64, u8)> = None;
            let candidates = [
                ((ci < crashes.len()).then(|| crashes[ci].from), TAG_CRASH),
                ((ri < records.len()).then(|| records[ri].from), TAG_OPEN),
                (
                    (ti < transfers.len()).then(|| transfers[ti].at),
                    TAG_TRANSFER,
                ),
                ((qi <= n).then(|| inst.t(qi)), TAG_REQUEST),
            ];
            for (t, tag) in candidates {
                if let Some(t) = t {
                    // Strict `<` keeps the lowest tag on ties: the array
                    // above is in priority order.
                    if pick.is_none_or(|(bt, _)| t < bt) {
                        pick = Some((t, tag));
                    }
                }
            }
            let Some((_, tag)) = pick else { break };
            match tag {
                TAG_CRASH => {
                    let w = crashes[ci];
                    ci += 1;
                    if w.server.index() >= servers {
                        continue;
                    }
                    let st = &mut srv[w.server.index()];
                    st.down_from = w.from;
                    st.down_to = w.to;
                    // Crash checks deliberately ignore `killed`: the
                    // replay applies every crash before any transfer, so
                    // a transfer-killed interval still collects crash
                    // findings (see `SrvState`).
                    if !st.has || st.stillborn {
                        continue;
                    }
                    // Opens at the onset instant are processed after the
                    // crash, so the current interval started strictly
                    // before it; it is truncated if it reaches past the
                    // onset, and watched via the pending slot if a later
                    // seamless merge might stretch it past.
                    if st.from < w.from
                        && st.crash_actual_to > w.from
                        && !self.eq(st.crash_actual_to, w.from)
                    {
                        st.crash_actual_to = w.from;
                        st.truncated = true;
                        findings.push(AuditFinding::Violation(Violation::CopyLostInCrash {
                            server: w.server,
                            at: w.from,
                        }));
                    } else if !st.truncated {
                        st.pending_crash = st.pending_crash.or(Some(w.from));
                    }
                }
                TAG_OPEN => {
                    let r = &records[ri];
                    ri += 1;
                    let s = r.server.index();
                    if s >= servers {
                        continue; // not indexed by the replay either
                    }
                    let st = &mut srv[s];
                    if st.has && r.from <= st.to {
                        // Seamless continuation: merge. The crash-replay
                        // end tracks the believed end even for a killed
                        // interval — the replay's crash phase sees the
                        // full merged geometry before any kill applies.
                        st.to = st.to.max(r.to);
                        if !st.stillborn && !st.truncated {
                            st.crash_actual_to = st.to;
                            if let Some(w) = st.pending_crash {
                                if st.crash_actual_to > w && !self.eq(st.crash_actual_to, w) {
                                    st.crash_actual_to = w;
                                    st.truncated = true;
                                    st.pending_crash = None;
                                    findings.push(AuditFinding::Violation(
                                        Violation::CopyLostInCrash {
                                            server: r.server,
                                            at: w,
                                        },
                                    ));
                                }
                            }
                        }
                    } else {
                        self.finalize_interval(st, s, spans, costs, &mut anchored);
                        st.has = true;
                        st.from = r.from;
                        st.to = r.to;
                        st.crash_actual_to = r.to;
                        st.stillborn = false;
                        st.killed = false;
                        st.truncated = false;
                        st.pending_crash = None;
                        st.grounded =
                            plan.is_some_and(|p| grounded_start(self.tol, p, outages, r.from));
                        // Provenance: origin at t = 0, seamless successor,
                        // a durable-storage reseed, or an incoming transfer
                        // at the start instant.
                        let origin_start = s == ServerId::ORIGIN.index() && self.eq(r.from, 0.0);
                        let continuation = st.has_prev && self.le(r.from, st.prev_to);
                        if !origin_start
                            && !continuation
                            && !st.grounded
                            && !self.has_time(&incoming[s], r.from)
                        {
                            findings.push(AuditFinding::Violation(
                                Violation::UnjustifiedCacheStart {
                                    server: r.server,
                                    at: r.from,
                                },
                            ));
                        }
                        // Created at/inside an outage with positive
                        // length: stillborn.
                        if r.from >= st.down_from
                            && r.from < st.down_to
                            && st.crash_actual_to > st.from
                            && !self.eq(st.crash_actual_to, st.from)
                        {
                            st.stillborn = true;
                            st.crash_actual_to = st.from;
                            findings.push(AuditFinding::Violation(Violation::CopyLostInCrash {
                                server: r.server,
                                at: st.from,
                            }));
                        }
                    }
                }
                TAG_TRANSFER => {
                    let tr = &transfers[ti];
                    ti += 1;
                    if tr.src.index() >= servers || tr.dst.index() >= servers {
                        findings.push(AuditFinding::Violation(Violation::DeadTransferSource {
                            src: tr.src,
                            dst: tr.dst,
                            at: tr.at,
                        }));
                        continue;
                    }
                    let src = &srv[tr.src.index()];
                    // Strictly inside an outage the source cannot send
                    // (the boundary instant is the pre-crash state).
                    let src_down = src.down_from < tr.at && tr.at < src.down_to;
                    let src_alive = !src_down
                        && src.alive()
                        && self.le(src.from, tr.at)
                        && self.le(tr.at, src.crash_actual_to)
                        && (src.from < tr.at
                            || (tr.src == ServerId::ORIGIN && self.eq(src.from, 0.0))
                            || (src.grounded && self.eq(src.from, tr.at)));
                    // A grounded *pass-through*: a durable-storage reseed
                    // relayed onward at the very instant it lands leaves a
                    // zero-length interval, which the record sweep skips
                    // (mirroring `normalize`) — accept the sourceless
                    // transfer at the same grounded instants the replay
                    // does.
                    let phantom_grounded = !src_down
                        && !src_alive
                        && plan.is_some_and(|p| grounded_start(self.tol, p, outages, tr.at));
                    let src_alive = src_alive || phantom_grounded;
                    // An otherwise-valid transfer crossing an active
                    // partition is illegal (outage and dead-source
                    // findings take precedence).
                    let severed =
                        src_alive && plan.is_some_and(|p| p.partitioned(tr.src, tr.dst, tr.at));
                    if src_alive && !severed {
                        delivered[tr.dst.index()].push(tr.at);
                    } else {
                        findings.push(AuditFinding::Violation(if src_down {
                            Violation::TransferDuringOutage {
                                src: tr.src,
                                at: tr.at,
                            }
                        } else if severed {
                            Violation::TransferAcrossPartition {
                                src: tr.src,
                                dst: tr.dst,
                                at: tr.at,
                            }
                        } else {
                            Violation::DeadTransferSource {
                                src: tr.src,
                                dst: tr.dst,
                                at: tr.at,
                            }
                        }));
                        // Kill the interval this transfer would have
                        // opened (same-instant opens precede transfers).
                        // Only the `killed` flag is set: crash geometry
                        // stays intact so later crash onsets still judge
                        // the interval exactly as the replay does.
                        let dst = &mut srv[tr.dst.index()];
                        if dst.alive() && self.eq(dst.from, tr.at) {
                            dst.killed = true;
                        }
                    }
                }
                _ => {
                    let (s, t) = (inst.server(qi), inst.t(qi));
                    qi += 1;
                    let served = s.index() < servers && {
                        let st = &srv[s.index()];
                        (st.alive() && self.le(st.from, t) && self.le(t, st.crash_actual_to))
                            || self.has_time(&delivered[s.index()], t)
                    };
                    if served {
                        tail_block = tail_block.max(t);
                    }
                    if !served {
                        // Waived when reality made service impossible: a
                        // total outage covers `t`, or a partition puts
                        // every live copy on the far side (the wrapper
                        // defers such requests into its accounted queue).
                        let waived = plan.is_some_and(|p| {
                            outage_covers(self.tol, outages, t)
                                || (p.partition_active(t)
                                    && !srv.iter().enumerate().any(|(s2, st)| {
                                        !p.partitioned(ServerId::from_index(s2), s, t)
                                            && st.alive()
                                            && self.le(st.from, t)
                                            && self.le(t, st.crash_actual_to)
                                    }))
                        });
                        if !waived {
                            tail_block = tail_block.max(t);
                            findings.push(AuditFinding::Violation(Violation::UnservedRequest {
                                request: qi - 1,
                                server: s,
                                at: t,
                            }));
                        }
                    }
                }
            }
        }
        for (s, st) in srv.iter_mut().enumerate() {
            self.finalize_interval(st, s, spans, costs, &mut anchored);
        }

        // --- coverage ---------------------------------------------------
        if n > 0 {
            if !anchored {
                findings.push(AuditFinding::Violation(Violation::MissingOriginCopy));
            }
            // Unstable sort: spans sharing a start time contribute the
            // same gap verdict in either order (`reach` is a running max).
            spans.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let horizon = inst.horizon();
            let mut reach = 0.0f64;
            let mut gap_reported = false;
            for &(from, to) in spans.iter() {
                if from > reach && !self.eq(from, reach) {
                    // A gap lying inside a total outage is waived: no
                    // policy can hold a copy anywhere over it.
                    if !gap_waived(self.tol, outages, reach, from) {
                        findings.push(AuditFinding::Violation(Violation::CoverageGap {
                            at: reach,
                        }));
                        gap_reported = true;
                    }
                    reach = from;
                }
                reach = reach.max(to);
                if reach >= horizon {
                    break;
                }
            }
            // A trailing gap is also waived when every request past `reach`
            // was deferred into the wrapper's accounted offline queue: the
            // run's last in-schedule obligation ends at `reach`, and the
            // replay of the queue happens against durable storage, outside
            // the schedule.
            let tail_deferred =
                plan.is_some() && (tail_block <= reach || self.eq(tail_block, reach));
            if !gap_reported
                && reach < horizon
                && !self.eq(reach, horizon)
                && !tail_deferred
                && !gap_waived(self.tol, outages, reach, horizon)
            {
                findings.push(AuditFinding::Violation(Violation::CoverageGap {
                    at: reach,
                }));
            }
        }

        // --- accounting -------------------------------------------------
        if let Some(reported) = reported_cost {
            // Recompute in the replay auditor's exact summation order
            // (normalized schedules sort by (server, from)) so the two
            // auditors agree bit-for-bit on the drift verdict.
            costs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            let model = inst.cost();
            let mut caching = 0.0;
            for &(_, from, to) in costs.iter() {
                caching += model.caching(to - from);
            }
            let mut transfer = 0.0;
            for _ in 0..transfers.len() {
                transfer += model.lambda;
            }
            let mut recomputed = caching + transfer;
            // Brownout surcharge, in the replay auditor's exact summation
            // order: interval terms over merged geometry sorted by
            // (server, start), then transfer terms sorted like a
            // normalized schedule's transfer list — (time, src, dst).
            if let Some(p) = plan {
                if !p.brownouts().is_empty() {
                    let mut sur = 0.0;
                    for &(s, from, to) in costs.iter() {
                        sur += interval_surcharge(p, ServerId::from_index(s), from, to, model.mu);
                    }
                    for tr in transfers {
                        tr_order.push((tr.at, tr.src.0, tr.dst.0));
                    }
                    tr_order.sort_unstable_by(|a, b| {
                        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                    });
                    for &(at, src, dst) in tr_order.iter() {
                        sur +=
                            transfer_surcharge(p, ServerId(src), ServerId(dst), at, model.lambda);
                    }
                    recomputed += sur;
                }
            }
            if !self.eq(reported, recomputed) {
                findings.push(AuditFinding::CostDrift {
                    reported,
                    recomputed,
                });
            }
        }
        if let Some(recorded) = recorded_transfers {
            let costed = rec.transfers.len();
            if recorded != costed {
                findings.push(AuditFinding::UnpaidTransfers { recorded, costed });
            }
        }

        findings
    }

    /// Allocating convenience wrapper around [`Self::audit_record_in`].
    pub fn audit_record(
        &self,
        inst: &Instance<f64>,
        rec: &RunRecord<f64>,
        reported_cost: Option<f64>,
        recorded_transfers: Option<usize>,
        plan: Option<&FaultPlan>,
    ) -> AuditReport {
        let mut scratch = AuditScratch::default();
        let findings = self
            .audit_record_in(
                inst,
                rec,
                reported_cost,
                recorded_transfers,
                plan,
                &mut scratch,
            )
            .to_vec();
        AuditReport { findings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::ScheduleAuditor;
    use mcc_core::online::{
        run_policy, CopyRecord, FaultTolerant, SpeculativeCaching, TransferRecord,
    };
    use mcc_model::CostModel;

    fn inst() -> Instance<f64> {
        Instance::from_compact("m=3 mu=1 lambda=1 | s2@0.5 s2@0.9 s3@1.4 s1@3.0 s2@3.5").unwrap()
    }

    fn crashy_plan() -> FaultPlan {
        FaultPlan::new(
            vec![
                CrashWindow {
                    server: ServerId(1),
                    from: 1.0,
                    to: 2.0,
                },
                CrashWindow {
                    server: ServerId(0),
                    from: 2.5,
                    to: 4.0,
                },
            ],
            11,
            0.0,
            0,
            0.0,
        )
    }

    /// Multiset comparison: findings have no `Ord`, so compare sorted
    /// debug renderings.
    fn multiset(findings: &[AuditFinding]) -> Vec<String> {
        let mut v: Vec<String> = findings.iter().map(|f| format!("{f:?}")).collect();
        v.sort();
        v
    }

    fn assert_matches_replay(
        inst: &Instance<f64>,
        rec: &RunRecord<f64>,
        reported: Option<f64>,
        recorded: Option<usize>,
        plan: Option<&FaultPlan>,
    ) {
        let replay =
            ScheduleAuditor::default().audit(inst, &rec.to_schedule(), reported, recorded, plan);
        let streaming =
            StreamingAuditor::default().audit_record(inst, rec, reported, recorded, plan);
        assert_eq!(
            multiset(&replay.findings),
            multiset(&streaming.findings),
            "streaming vs replay finding multisets"
        );
    }

    #[test]
    fn clean_run_audits_clean() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let report = StreamingAuditor::default().audit_record(
            &inst,
            &run.record,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            None,
        );
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_matches_replay(
            &inst,
            &run.record,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            None,
        );
    }

    #[test]
    fn oblivious_run_matches_replay_under_crashes() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let plan = crashy_plan();
        let report = StreamingAuditor::default().audit_record(
            &inst,
            &run.record,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            Some(&plan),
        );
        assert!(!report.is_clean());
        assert_matches_replay(
            &inst,
            &run.record,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            Some(&plan),
        );
    }

    #[test]
    fn wrapped_run_stays_clean() {
        let inst = inst();
        let plan = crashy_plan();
        let mut ft = FaultTolerant::new(SpeculativeCaching::<f64>::paper(), plan.clone());
        let run = run_policy(&mut ft, &inst);
        let report = StreamingAuditor::default().audit_record(
            &inst,
            &run.record,
            Some(run.total_cost),
            Some(run.record.transfers.len()),
            Some(&plan),
        );
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn boundary_crash_truncates_a_later_seamless_merge() {
        // Two seamless records [0,1] + [1,2] on the origin; a crash
        // starting exactly at the handover instant t = 1. The crash event
        // precedes the second open, so the truncation must be applied
        // retroactively when the merge stretches past it (the
        // pending-crash slot).
        let inst = Instance::<f64>::new(
            1,
            CostModel::unit(),
            vec![mcc_model::Request {
                server: ServerId(0),
                time: 0.5,
            }],
        )
        .unwrap();
        let rec = RunRecord {
            records: vec![
                CopyRecord {
                    server: ServerId(0),
                    from: 0.0,
                    last_touch: 0.5,
                    to: 1.0,
                },
                CopyRecord {
                    server: ServerId(0),
                    from: 1.0,
                    last_touch: 1.0,
                    to: 2.0,
                },
            ],
            transfers: vec![],
            epoch_boundaries: vec![],
        };
        let plan = FaultPlan::new(
            vec![CrashWindow {
                server: ServerId(0),
                from: 1.0,
                to: 1.5,
            }],
            1,
            0.0,
            0,
            0.0,
        );
        let report = StreamingAuditor::default().audit_record(&inst, &rec, None, None, Some(&plan));
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                AuditFinding::Violation(Violation::CopyLostInCrash { at, .. }) if *at == 1.0
            )),
            "{:?}",
            report.findings
        );
        assert_matches_replay(&inst, &rec, None, None, Some(&plan));
    }

    #[test]
    fn stillborn_copy_inside_an_outage_is_flagged() {
        // Origin copy [0,5]; a transfer at t = 1.2 delivers to server 1,
        // which is down over [1, 3): the delivered copy is stillborn.
        let inst = Instance::<f64>::new(2, CostModel::unit(), vec![]).unwrap();
        let rec = RunRecord {
            records: vec![
                CopyRecord {
                    server: ServerId(0),
                    from: 0.0,
                    last_touch: 1.2,
                    to: 5.0,
                },
                CopyRecord {
                    server: ServerId(1),
                    from: 1.2,
                    last_touch: 1.2,
                    to: 2.0,
                },
            ],
            transfers: vec![TransferRecord {
                src: ServerId(0),
                dst: ServerId(1),
                at: 1.2,
                epoch: 0,
            }],
            epoch_boundaries: vec![],
        };
        let plan = FaultPlan::new(
            vec![CrashWindow {
                server: ServerId(1),
                from: 1.0,
                to: 3.0,
            }],
            1,
            0.0,
            0,
            0.0,
        );
        let report = StreamingAuditor::default().audit_record(&inst, &rec, None, None, Some(&plan));
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                AuditFinding::Violation(Violation::CopyLostInCrash { at, .. }) if *at == 1.2
            )),
            "{:?}",
            report.findings
        );
        assert_matches_replay(&inst, &rec, None, None, Some(&plan));
    }

    #[test]
    fn infeasible_record_is_flagged_like_the_replay() {
        // A single origin copy ending before the only request: unserved
        // request + coverage gap.
        let inst = Instance::<f64>::new(
            2,
            CostModel::unit(),
            vec![mcc_model::Request {
                server: ServerId(1),
                time: 2.0,
            }],
        )
        .unwrap();
        let rec = RunRecord {
            records: vec![CopyRecord {
                server: ServerId(0),
                from: 0.0,
                last_touch: 0.0,
                to: 0.5,
            }],
            transfers: vec![],
            epoch_boundaries: vec![],
        };
        let report = StreamingAuditor::default().audit_record(&inst, &rec, None, None, None);
        assert!(report.violations() >= 2, "{:?}", report.findings);
        assert_matches_replay(&inst, &rec, None, None, None);
    }

    #[test]
    fn accounting_findings_fire_and_match() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let report = StreamingAuditor::default().audit_record(
            &inst,
            &run.record,
            Some(run.total_cost + 1.0),
            Some(run.record.transfers.len() + 2),
            None,
        );
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::CostDrift { .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::UnpaidTransfers { .. })));
        assert_matches_replay(
            &inst,
            &run.record,
            Some(run.total_cost + 1.0),
            Some(run.record.transfers.len() + 2),
            None,
        );
    }

    #[test]
    fn warm_scratch_is_reused_across_runs() {
        let inst = inst();
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let auditor = StreamingAuditor::default();
        let mut scratch = AuditScratch::default();
        let cold: Vec<AuditFinding> = auditor
            .audit_record_in(
                &inst,
                &run.record,
                Some(run.total_cost),
                None,
                None,
                &mut scratch,
            )
            .to_vec();
        let warm: Vec<AuditFinding> = auditor
            .audit_record_in(
                &inst,
                &run.record,
                Some(run.total_cost),
                None,
                None,
                &mut scratch,
            )
            .to_vec();
        assert_eq!(cold, warm);
    }
}
