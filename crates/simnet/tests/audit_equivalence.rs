//! Streaming-vs-replay auditor equivalence.
//!
//! The streaming auditor ([`mcc_simnet::StreamingAuditor`]) must emit the
//! same *multiset* of findings as the replay auditor
//! ([`mcc_simnet::ScheduleAuditor`]) applied to the normalized schedule of
//! the same run — for random instances, random fault plans, and the
//! policies the sweep actually runs (Speculative Caching bare, wrapped and
//! fault-oblivious, plus Follow). Finding order may differ (replay groups
//! by check, streaming emits by time), so the comparison sorts.

use mcc_core::online::{
    brownout_surcharge, run_policy, run_policy_record, FaultPlan, FaultTolerant, Follow, RunRecord,
    Runtime, SpeculativeCaching,
};
use mcc_model::{CostModel, Instance, Request, ServerId};
use mcc_simnet::fault::FaultSpec;
use mcc_simnet::{AuditFinding, ScheduleAuditor, StreamingAuditor};
use proptest::prelude::*;

fn random_instance() -> impl Strategy<Value = Instance<f64>> {
    (2usize..=6, 1usize..=50).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(0.01f64..4.0, n);
        let mu = 0.2f64..3.0;
        let lambda = 0.2f64..3.0;
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t = 0.0;
            let requests: Vec<Request<f64>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t += gap;
                    Request::new(ServerId::from_index(s), t)
                })
                .collect();
            Instance::new(m, CostModel::new(mu, lambda).unwrap(), requests).unwrap()
        })
    })
}

/// Crash-heavy spec space: high rates and long outages maximize the
/// number of findings the oblivious runs produce, which is where the two
/// auditors have the most opportunity to disagree. Bursts, partitions and
/// brownouts ride along so every finding class (partition-severed
/// transfers, deferral waivers, surcharge drift) is exercised in both.
fn random_spec() -> impl Strategy<Value = FaultSpec> {
    (
        (0u64..u64::MAX, 0.0f64..2.0, 0.05f64..5.0),
        (0.0f64..0.3, 0.0f64..1.0),
        (0.0f64..0.4, 0.05f64..2.0),
        (0.0f64..0.3, 0.05f64..2.0, 1.01f64..4.0),
    )
        .prop_map(
            |(
                (seed, crash_rate, mean_downtime),
                (burst_rate, burst_coverage),
                (partition_rate, partition_mean),
                (brownout_rate, brownout_mean, brownout_factor),
            )| FaultSpec {
                seed,
                crash_rate,
                mean_downtime,
                burst_rate,
                burst_coverage,
                partition_rate,
                partition_mean,
                brownout_rate,
                brownout_mean,
                brownout_factor,
                ..FaultSpec::default()
            },
        )
}

fn multiset(findings: &[AuditFinding]) -> Vec<String> {
    let mut v: Vec<String> = findings.iter().map(|f| format!("{f:?}")).collect();
    v.sort();
    v
}

/// Asserts the two auditors agree on `rec`, both with and without the
/// accounting inputs.
fn assert_equivalent(
    inst: &Instance<f64>,
    rec: &RunRecord<f64>,
    reported_cost: f64,
    plan: Option<&FaultPlan>,
) -> Result<(), TestCaseError> {
    let replay = ScheduleAuditor::default();
    let streaming = StreamingAuditor::default();
    let sched = rec.to_schedule();
    for (reported, recorded) in [
        (None, None),
        (Some(reported_cost), Some(rec.transfers.len())),
        // Deliberately wrong accounting inputs must drift identically.
        (Some(reported_cost + 0.75), Some(rec.transfers.len() + 1)),
    ] {
        let a = replay.audit(inst, &sched, reported, recorded, plan);
        let b = streaming.audit_record(inst, rec, reported, recorded, plan);
        prop_assert_eq!(
            multiset(&a.findings),
            multiset(&b.findings),
            "auditors disagree on {} (reported={:?})",
            inst.to_compact(),
            reported
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Fault-oblivious Speculative Caching under a random crash plan: the
    /// richest source of findings (unserved requests, lost copies, dead
    /// transfer sources, coverage gaps).
    #[test]
    fn oblivious_sc_streams_the_replay_findings(
        inst in random_instance(),
        spec in random_spec(),
        run_seed in 0u64..64,
    ) {
        let plan = spec.plan_for(run_seed, inst.servers(), inst.horizon());
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        assert_equivalent(&inst, &run.record, run.total_cost, Some(&plan))?;
    }

    /// Wrapped (fault-tolerant) Speculative Caching: both auditors must
    /// agree the repaired run is clean — and agree finding-for-finding if
    /// it ever is not.
    #[test]
    fn wrapped_sc_streams_the_replay_findings(
        inst in random_instance(),
        spec in random_spec(),
        run_seed in 0u64..64,
    ) {
        let plan = spec.plan_for(run_seed, inst.servers(), inst.horizon());
        let mut wrapped = FaultTolerant::new(SpeculativeCaching::paper(), plan.clone());
        let mut rt = Runtime::new(inst.servers());
        let (stats, rec) = run_policy_record(&mut wrapped, &inst, &mut rt);
        let sur = brownout_surcharge(&plan, rec, inst.cost());
        assert_equivalent(&inst, rec, stats.total_cost + sur, Some(&plan))?;
    }

    /// Follow produces a different record shape (single roaming copy,
    /// no speculative tails); healthy and crashed clusters both.
    #[test]
    fn follow_streams_the_replay_findings(
        inst in random_instance(),
        spec in random_spec(),
    ) {
        let run = run_policy(&mut Follow::new(), &inst);
        assert_equivalent(&inst, &run.record, run.total_cost, None)?;
        let plan = spec.plan_for(3, inst.servers(), inst.horizon());
        assert_equivalent(&inst, &run.record, run.total_cost, Some(&plan))?;
    }
}
