//! Property test: the sweep's batched staging path is a faithful
//! round-trip.
//!
//! The batched worker fills per-slot [`InstanceBuf`]s from
//! [`Workload::generate_into`] and pushes each borrowed instance into one
//! [`BatchWorkspace`]. This test pins both halves of that hand-off:
//!
//! * the packed SoA lanes reproduce the scalar [`Prescan`] of every staged
//!   instance **bit for bit** (times, shifted previous-pointers, σ, the
//!   marginal and running bounds) — i.e. staging is a layout change, not a
//!   recomputation that could drift;
//! * every lane's solved optimum equals the per-instance
//!   [`solve_auto_in`] answer exactly, across workload families, shapes
//!   and seeds, including a dirty (reused) workspace.

use mcc_core::offline::{solve_auto_in, solve_batch_in, BatchWorkspace, SolverWorkspace};
use mcc_model::Prescan;
use mcc_workloads::{CommonParams, InstanceBuf, PoissonWorkload, Workload, ZipfWorkload};
use proptest::prelude::*;

fn check_roundtrip(workload: &dyn Workload, seeds: &[u64]) -> Result<(), TestCaseError> {
    let mut bufs: Vec<InstanceBuf> = (0..seeds.len()).map(|_| InstanceBuf::new()).collect();
    let mut bws = BatchWorkspace::new();
    // Dirty the workspace first: the sweep reuses one workspace per
    // worker, so a fresh-allocation-only guarantee would be vacuous.
    {
        let mut warm = InstanceBuf::new();
        let inst = workload.generate_into(u64::MAX, &mut warm);
        solve_batch_in(&[inst, inst], &mut bws);
    }

    bws.clear();
    for (slot, &seed) in bufs.iter_mut().zip(seeds) {
        let inst = workload.generate_into(seed, slot);
        bws.push(inst);
    }
    bws.solve();
    prop_assert_eq!(bws.len(), seeds.len());

    let mut ws = SolverWorkspace::new();
    for (k, slot) in bufs.iter().enumerate() {
        let inst = slot.instance();
        // Lane views reproduce the scalar prescan bit for bit.
        let scan = Prescan::compute(inst);
        let batch_scan = bws.prescan();
        let lane = batch_scan.lane(k);
        prop_assert_eq!(bws.n_of(k), inst.n(), "lane {} length", k);
        for (i, j) in lane.enumerate() {
            prop_assert_eq!(
                batch_scan.p1[j],
                scan.p[i].map_or(0, |p| p as u32 + 1),
                "p1 lane {} entry {}",
                k,
                i
            );
            // Dummy entries carry σ = 0 in the SoA lanes (the branch-free
            // bound select never reads them); real entries match exactly.
            let expect_sigma = scan.sigma[i].unwrap_or(0.0);
            prop_assert_eq!(
                batch_scan.sigma[j].to_bits(),
                expect_sigma.to_bits(),
                "sigma lane {} entry {}",
                k,
                i
            );
            prop_assert_eq!(
                batch_scan.b[j].to_bits(),
                scan.b[i].to_bits(),
                "b lane {} entry {}",
                k,
                i
            );
            prop_assert_eq!(
                batch_scan.big_b[j].to_bits(),
                scan.big_b[i].to_bits(),
                "B lane {} entry {}",
                k,
                i
            );
        }
        // And the solved lane equals the per-instance auto solve exactly.
        let scalar = solve_auto_in(inst, &mut ws);
        prop_assert_eq!(
            bws.optimal_cost(k).to_bits(),
            scalar.optimal_cost().to_bits(),
            "optimal cost lane {}",
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_batches_roundtrip_bit_for_bit(
        servers in 1usize..=8,
        requests in 0usize..=60,
        rate in 0.2f64..4.0,
        base_seed in 0u64..1_000_000,
        k in 1usize..=9,
    ) {
        let params = CommonParams { servers, requests, mu: 1.0, lambda: 1.0 };
        let seeds: Vec<u64> = (0..k as u64).map(|j| base_seed.wrapping_add(j)).collect();
        let poisson = PoissonWorkload::uniform(params, rate);
        check_roundtrip(&poisson, &seeds)?;
        let zipf = ZipfWorkload::new(params, rate, 1.2);
        check_roundtrip(&zipf, &seeds)?;
    }
}
