//! Asserts the run pipeline's zero-allocation guarantee: once a
//! [`RunWorkspace`] is warm, a full unit — **instance generation**
//! (via `Workload::generate_into`), policy run, streaming audit, cost
//! breakdown, off-line optimum, and (for fault cells) plan expansion —
//! performs **zero** heap allocations.
//!
//! This file must remain the SOLE test in its integration-test binary:
//! the counting `#[global_allocator]` observes the whole process, and the
//! test harness runs tests in one process (concurrently, by default) —
//! any sibling test's allocations would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mcc_core::online::{FaultPlan, FaultTolerant, OnlinePolicy, SpeculativeCaching};
use mcc_model::Instance;
use mcc_simnet::{
    run_seed_faulty_in, run_seed_in, run_seed_oblivious_in, run_unit_faulty_in, run_unit_in,
    run_unit_oblivious_in, FaultSpec, RunWorkspace,
};
use mcc_workloads::{CommonParams, PoissonWorkload, Workload};

/// Counts allocation *events* (alloc/realloc/alloc_zeroed) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_workspace_seed_units_allocate_nothing() {
    // Pre-generated-instance path: the workspace's generation buffer is
    // bypassed entirely; only the run scratch is exercised.
    let workload = PoissonWorkload::uniform(CommonParams::small().with_size(6, 120), 1.0);
    let instances: Vec<Instance<f64>> = (0..4u64).map(|s| workload.generate(s)).collect();
    let spec = FaultSpec {
        seed: 7,
        crash_rate: 0.4,
        mean_downtime: 2.0,
        ..FaultSpec::default()
    };

    let mut ws = RunWorkspace::new();
    let mut policy: Box<dyn OnlinePolicy<f64>> = Box::new(SpeculativeCaching::paper());
    let mut oblivious: Box<dyn OnlinePolicy<f64>> = Box::new(SpeculativeCaching::paper());
    let mut wrapped = FaultTolerant::new(SpeculativeCaching::<f64>::paper(), FaultPlan::none());

    // Warm-up: one pass over every (seed, mode) grows all buffers to the
    // high-water mark that exact pass will need again (runs are
    // seed-deterministic).
    let mut expect = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        let seed = i as u64;
        let a = run_seed_in(policy.as_mut(), seed, inst, &mut ws);
        let b = run_seed_faulty_in(&mut wrapped, &spec, seed, inst, &mut ws);
        let c = run_seed_oblivious_in(oblivious.as_mut(), &spec, seed, inst, &mut ws);
        expect.push((
            a.online_cost,
            b.online_cost,
            c.online_cost,
            c.audit_findings,
        ));
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        for (i, inst) in instances.iter().enumerate() {
            let seed = i as u64;
            let a = run_seed_in(policy.as_mut(), seed, inst, &mut ws);
            let b = run_seed_faulty_in(&mut wrapped, &spec, seed, inst, &mut ws);
            let c = run_seed_oblivious_in(oblivious.as_mut(), &spec, seed, inst, &mut ws);
            // Results must also be bit-identical to the cold pass.
            assert_eq!(a.online_cost, expect[i].0);
            assert_eq!(b.online_cost, expect[i].1);
            assert_eq!(c.online_cost, expect[i].2);
            assert_eq!(c.audit_findings, expect[i].3);
        }
    }
    ARMED.store(false, Ordering::SeqCst);

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state seed units must not touch the heap ({events} allocation events)"
    );

    // Full-unit path: generation included. `run_unit_*` regenerate each
    // seed's instance into the workspace's `InstanceBuf` before running
    // it — once that buffer is warm, the whole unit (generate + run +
    // audit + optimum) must stay off the heap too. Uniform Poisson fills
    // its trace without any per-call tables, so a warm buffer is
    // genuinely allocation-free.
    EVENTS.store(0, Ordering::SeqCst);
    let mut unit_expect = Vec::new();
    for seed in 0..4u64 {
        let a = run_unit_in(policy.as_mut(), &workload, seed, &mut ws);
        let b = run_unit_faulty_in(&mut wrapped, &spec, &workload, seed, &mut ws);
        let c = run_unit_oblivious_in(oblivious.as_mut(), &spec, &workload, seed, &mut ws);
        unit_expect.push((a.online_cost, b.online_cost, c.online_cost));
        // The unit pipeline must agree with the pre-generated-instance
        // pipeline seed for seed.
        assert_eq!(a.online_cost, expect[seed as usize].0);
        assert_eq!(b.online_cost, expect[seed as usize].1);
        assert_eq!(c.online_cost, expect[seed as usize].2);
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        for seed in 0..4u64 {
            let a = run_unit_in(policy.as_mut(), &workload, seed, &mut ws);
            let b = run_unit_faulty_in(&mut wrapped, &spec, &workload, seed, &mut ws);
            let c = run_unit_oblivious_in(oblivious.as_mut(), &spec, &workload, seed, &mut ws);
            assert_eq!(a.online_cost, unit_expect[seed as usize].0);
            assert_eq!(b.online_cost, unit_expect[seed as usize].1);
            assert_eq!(c.online_cost, unit_expect[seed as usize].2);
        }
    }
    ARMED.store(false, Ordering::SeqCst);

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state full units (generation included) must not touch the heap \
         ({events} allocation events)"
    );
}
