//! Asserts the run pipeline's zero-allocation guarantee: once a
//! [`RunRequest`]'s workspace is warm, a full unit — **instance
//! generation** (via `Workload::generate_into`), policy run, streaming
//! audit, cost breakdown, off-line optimum, and (for fault modes) plan
//! expansion — performs **zero** heap allocations. The guarantee holds
//! with a **live metrics sink** attached: every request here records
//! into a shared [`mcc_obs::Registry`], whose record path is flat atomic
//! arrays, so observability costs counters and clock reads but never an
//! allocation.
//!
//! This file must remain the SOLE test in its integration-test binary:
//! the counting `#[global_allocator]` is process-global state, and only
//! one test at a time may own the armed window on its thread —
//! a sibling test armed concurrently would race the shared counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use mcc_model::Instance;
use mcc_obs::{Counter, Registry};
use mcc_simnet::{factory, FaultSpec, RunMode, RunRequest};
use mcc_workloads::{CommonParams, PoissonWorkload, Workload};

/// Counts allocation *events* (alloc/realloc/alloc_zeroed) while armed.
struct CountingAlloc;

thread_local! {
    // Arming is thread-local (const-initialized, droppable-free TLS, so
    // neither reading nor first access allocates): only the test
    // thread's allocations count. Every pipeline exercised here is
    // single-threaded on this thread, and harness threads (libtest's
    // monitor, parallel workers under load) cannot race the counter.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static EVENTS: AtomicUsize = AtomicUsize::new(0);

/// Whether the *current thread* is armed; `false` during TLS teardown.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_request_units_allocate_nothing_even_with_a_live_sink() {
    let workload = PoissonWorkload::uniform(CommonParams::small().with_size(6, 120), 1.0);
    let instances: Vec<Instance<f64>> = (0..4u64).map(|s| workload.generate(s)).collect();
    // Every chaos-layer class on: correlated bursts, partitions,
    // brownouts, transfer failures with backoff, delays, and a finite
    // degraded-mode queue — the warm unit must absorb them all without
    // touching the heap.
    let spec = FaultSpec {
        seed: 7,
        crash_rate: 0.4,
        mean_downtime: 2.0,
        burst_rate: 0.1,
        burst_coverage: 0.5,
        partition_rate: 0.1,
        partition_mean: 0.6,
        brownout_rate: 0.1,
        brownout_mean: 0.8,
        brownout_factor: 2.5,
        fail_prob: 0.1,
        retry_budget: 8,
        backoff_base: 0.05,
        queue_cap: 4,
        mean_delay: 0.1,
        ..FaultSpec::default()
    };
    let f = factory(mcc_core::online::SpeculativeCaching::<f64>::paper());

    // One live registry shared by all three requests: the record path is
    // preallocated atomics, so metrics must not break the guarantee.
    let reg = Registry::new();
    let mut req_plain = RunRequest::new(RunMode::Plain).with_sink(&reg);
    let mut req_faulty = RunRequest::new(RunMode::Faulty(spec)).with_sink(&reg);
    let mut req_obl = RunRequest::new(RunMode::Oblivious(spec)).with_sink(&reg);
    let mut p_plain = req_plain.policy(&f);
    let mut p_tol = req_faulty.policy(&f);
    let mut p_obl = req_obl.policy(&f);
    let mut runs: u64 = 0;

    // Pre-generated-instance path first: the generation buffers are
    // bypassed entirely; only the run scratch is exercised.
    //
    // Warm-up: one pass over every (seed, mode) grows all buffers to the
    // high-water mark that exact pass will need again (runs are
    // seed-deterministic).
    let mut expect = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        let seed = i as u64;
        let a = req_plain.run_seed(&mut p_plain, seed, inst);
        let b = req_faulty.run_seed(&mut p_tol, seed, inst);
        let c = req_obl.run_seed(&mut p_obl, seed, inst);
        runs += 3;
        expect.push((
            a.online_cost,
            b.online_cost,
            c.online_cost,
            c.audit_findings,
        ));
    }

    ARMED.with(|a| a.set(true));
    for _ in 0..3 {
        for (i, inst) in instances.iter().enumerate() {
            let seed = i as u64;
            let a = req_plain.run_seed(&mut p_plain, seed, inst);
            let b = req_faulty.run_seed(&mut p_tol, seed, inst);
            let c = req_obl.run_seed(&mut p_obl, seed, inst);
            runs += 3;
            // Results must also be bit-identical to the cold pass.
            assert_eq!(a.online_cost, expect[i].0);
            assert_eq!(b.online_cost, expect[i].1);
            assert_eq!(c.online_cost, expect[i].2);
            assert_eq!(c.audit_findings, expect[i].3);
        }
    }
    ARMED.with(|a| a.set(false));

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state seed units must not touch the heap ({events} allocation events)"
    );

    // Full-unit path: generation included. `run_unit` regenerates each
    // seed's instance into the request's `InstanceBuf` before running it
    // — once that buffer is warm, the whole unit (generate + run + audit
    // + optimum + metrics) must stay off the heap too. Uniform Poisson
    // fills its trace without any per-call tables, so a warm buffer is
    // genuinely allocation-free.
    EVENTS.store(0, Ordering::SeqCst);
    let mut unit_expect = Vec::new();
    for seed in 0..4u64 {
        let a = req_plain.run_unit(&mut p_plain, &workload, seed);
        let b = req_faulty.run_unit(&mut p_tol, &workload, seed);
        let c = req_obl.run_unit(&mut p_obl, &workload, seed);
        runs += 3;
        unit_expect.push((a.online_cost, b.online_cost, c.online_cost));
        // The unit pipeline must agree with the pre-generated-instance
        // pipeline seed for seed.
        assert_eq!(a.online_cost, expect[seed as usize].0);
        assert_eq!(b.online_cost, expect[seed as usize].1);
        assert_eq!(c.online_cost, expect[seed as usize].2);
    }

    ARMED.with(|a| a.set(true));
    for _ in 0..3 {
        for seed in 0..4u64 {
            let a = req_plain.run_unit(&mut p_plain, &workload, seed);
            let b = req_faulty.run_unit(&mut p_tol, &workload, seed);
            let c = req_obl.run_unit(&mut p_obl, &workload, seed);
            runs += 3;
            assert_eq!(a.online_cost, unit_expect[seed as usize].0);
            assert_eq!(b.online_cost, unit_expect[seed as usize].1);
            assert_eq!(c.online_cost, unit_expect[seed as usize].2);
        }
    }
    ARMED.with(|a| a.set(false));

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state full units (generation included, live sink attached) \
         must not touch the heap ({events} allocation events)"
    );

    // Batched path: `run_units` hands the whole seed chunk to the batched
    // solver — generation staged into per-slot buffers, one SoA solve,
    // precomputed optima threaded to the seed cores. Warm, a full batched
    // sweep chunk must stay off the heap too, and agree with the scalar
    // unit pipeline seed for seed.
    EVENTS.store(0, Ordering::SeqCst);
    let seeds: Vec<u64> = (0..4u64).collect();
    let mut out = Vec::new();
    req_plain.run_units(&mut p_plain, &workload, &seeds, &mut out);
    req_faulty.run_units(&mut p_tol, &workload, &seeds, &mut out);
    runs += 8;
    for (i, r) in out.iter().take(4).enumerate() {
        assert_eq!(r.online_cost, unit_expect[i].0, "batched vs unit, plain");
    }
    for (i, r) in out.iter().skip(4).enumerate() {
        assert_eq!(r.online_cost, unit_expect[i].1, "batched vs unit, faulty");
    }

    ARMED.with(|a| a.set(true));
    for _ in 0..3 {
        out.clear();
        req_plain.run_units(&mut p_plain, &workload, &seeds, &mut out);
        req_faulty.run_units(&mut p_tol, &workload, &seeds, &mut out);
        runs += 8;
        for (i, r) in out.iter().take(4).enumerate() {
            assert_eq!(r.online_cost, unit_expect[i].0);
        }
        for (i, r) in out.iter().skip(4).enumerate() {
            assert_eq!(r.online_cost, unit_expect[i].1);
        }
    }
    ARMED.with(|a| a.set(false));

    let events = EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state batched units (staging + SoA solve + run, live sink \
         attached) must not touch the heap ({events} allocation events)"
    );

    // The sink really was live the whole time: every run above landed in
    // the registry (snapshotting is allowed to allocate — we are disarmed).
    let snap = reg.snapshot();
    assert_eq!(snap.counter(Counter::Runs), runs);
    assert!(snap.counter(Counter::SolveNanos) > 0, "spans recorded");
    assert!(
        snap.counter(Counter::SolveBatchDispatches) > 0,
        "the batched path really ran"
    );
}
