//! Property tests for the fault-injection layer.
//!
//! For random request sequences and random fault regimes:
//! * the fault-tolerant wrapper keeps Speculative Caching auditor-clean
//!   under *any* seed-derived fault plan (the survival guarantee), with
//!   correlated bursts, partitions, brownouts and total outages included;
//! * degraded mode loses nothing silently: every request is served or
//!   explicitly deferred, and every deferral is replayed or accounted as
//!   a drop at the queue bound;
//! * a trivial fault plan is a strict no-op — the wrapped run is
//!   bit-identical to the bare policy's, schedule and cost alike, and the
//!   faulty cell runner collapses to the fault-free one;
//! * plan expansion into a dirty scratch buffer is bit-identical to a
//!   fresh expansion.

use mcc_core::online::{
    brownout_surcharge, run_policy, run_policy_record, FaultPlan, FaultTolerant, Runtime,
    SpeculativeCaching,
};
use mcc_model::{CostModel, Instance, Request, ServerId};
use mcc_obs::Registry;
use mcc_simnet::{factory, FaultSpec, PlanScratch, RunMode, RunRequest, ScheduleAuditor};
use mcc_workloads::{CommonParams, PoissonWorkload};
use proptest::prelude::*;

fn random_instance() -> impl Strategy<Value = Instance<f64>> {
    (2usize..=6, 1usize..=50).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(0.01f64..4.0, n);
        let mu = 0.2f64..3.0;
        let lambda = 0.2f64..3.0;
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t = 0.0;
            let requests: Vec<Request<f64>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t += gap;
                    Request::new(ServerId::from_index(s), t)
                })
                .collect();
            Instance::new(m, CostModel::new(mu, lambda).unwrap(), requests).unwrap()
        })
    })
}

/// A spec exercising every fault class: independent crashes, correlated
/// bursts (coverage up to the whole cluster, so total outages happen),
/// partitions, brownouts, transfer failures with a bounded retry budget
/// and backoff, delays, and a small degraded-mode queue (so drops happen).
fn random_spec() -> impl Strategy<Value = FaultSpec> {
    (
        (0u64..u64::MAX, 0.0f64..1.0, 0.05f64..3.0),
        (0.0f64..0.3, 0.0f64..1.0),
        (0.0f64..0.3, 0.05f64..2.0),
        (0.0f64..0.3, 0.05f64..2.0, 1.01f64..4.0),
        (0.0f64..0.3, 0u32..8, 0.0f64..0.2),
        (0u32..8, 0.0f64..0.5),
    )
        .prop_map(
            |(
                (seed, crash_rate, mean_downtime),
                (burst_rate, burst_coverage),
                (partition_rate, partition_mean),
                (brownout_rate, brownout_mean, brownout_factor),
                (fail_prob, retry_budget, backoff_base),
                (queue_cap, mean_delay),
            )| FaultSpec {
                seed,
                crash_rate,
                mean_downtime,
                burst_rate,
                burst_coverage,
                partition_rate,
                partition_mean,
                brownout_rate,
                brownout_mean,
                brownout_factor,
                fail_prob,
                retry_budget,
                backoff_base,
                queue_cap,
                mean_delay,
                tolerant: true,
            },
        )
}

/// Runs wrapped SC under `plan` and audits the outcome with the replay
/// auditor, the reported cost carrying the brownout surcharge exactly as
/// the run pipeline reports it.
fn run_wrapped_and_audit(
    inst: &Instance<f64>,
    plan: &FaultPlan,
) -> (
    mcc_core::online::FaultStats,
    mcc_core::online::RunStats<f64>,
    mcc_simnet::AuditReport,
) {
    let mut wrapped = FaultTolerant::new(SpeculativeCaching::paper(), plan.clone());
    let mut rt = Runtime::new(inst.servers());
    let (stats, rec) = run_policy_record(&mut wrapped, inst, &mut rt);
    let sur = brownout_surcharge(plan, rec, inst.cost());
    let report = ScheduleAuditor::default().audit(
        inst,
        &rec.to_schedule(),
        Some(stats.total_cost + sur),
        Some(stats.transfers),
        Some(plan),
    );
    (wrapped.stats().clone(), stats, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The survival guarantee: wrapped SC audits clean against every plan
    /// the generator can produce — crashes, correlated bursts, partitions,
    /// brownouts, transfer failures and total outages included.
    #[test]
    fn wrapped_sc_audits_clean_under_any_fault_plan(
        inst in random_instance(),
        spec in random_spec(),
        run_seed in 0u64..64,
    ) {
        let plan = spec.plan_for(run_seed, inst.servers(), inst.horizon());
        let (_, stats, report) = run_wrapped_and_audit(&inst, &plan);
        prop_assert!(
            report.is_clean(),
            "wrapped SC tripped the auditor ({} findings) on {} under plan with {} crashes, \
             {} partitions, {} brownouts: {:?}",
            report.len(),
            inst.to_compact(),
            plan.crashes().len(),
            plan.partitions().len(),
            plan.brownouts().len(),
            format!("{:?} spec: {spec:?}", report.findings.first())
        );
        prop_assert!(stats.total_cost.is_finite());
    }

    /// Degraded-mode conservation: no request is silently lost. Every
    /// request is either served in-schedule or deferred; every deferral is
    /// replayed or accounted as a drop at the queue bound; the peak queue
    /// depth respects the bound.
    #[test]
    fn degraded_mode_conserves_every_request(
        inst in random_instance(),
        spec in random_spec(),
        run_seed in 0u64..64,
    ) {
        let plan = spec.plan_for(run_seed, inst.servers(), inst.horizon());
        let (fstats, stats, report) = run_wrapped_and_audit(&inst, &plan);
        prop_assert_eq!(
            fstats.deferred, stats.deferred,
            "wrapper and executor disagree on the deferral count"
        );
        prop_assert_eq!(
            fstats.deferred,
            fstats.replayed + fstats.dropped,
            "a deferral must end as a replay or an accounted drop"
        );
        prop_assert!(
            fstats.queue_peak <= plan.queue_cap() as usize,
            "queue peak {} exceeded the bound {}",
            fstats.queue_peak,
            plan.queue_cap()
        );
        prop_assert!(report.is_clean(), "conserving run must audit clean");
        // Every dropped or replayed request still has its cost accounted:
        // replays pay λ each (the replay transfer), never NaN/∞.
        prop_assert!(fstats.replay_cost.is_finite());
        prop_assert!(fstats.replay_cost >= 0.0);
    }

    /// Expanding a plan into a scratch buffer dirtied by a *different*
    /// spec is bit-identical to a fresh expansion — for every fault class.
    #[test]
    fn plan_for_into_with_dirty_scratch_matches_fresh(
        dirty_spec in random_spec(),
        spec in random_spec(),
        servers in 1usize..=6,
        run_seed in 0u64..64,
        horizon in 1.0f64..200.0,
    ) {
        let mut plan = FaultPlan::none();
        let mut scratch = PlanScratch::default();
        // Dirty both the plan buffer and the scratch with another regime.
        dirty_spec.plan_for_into(
            run_seed.wrapping_add(17),
            servers,
            horizon * 0.7,
            &mut plan,
            &mut scratch,
        );
        spec.plan_for_into(run_seed, servers, horizon, &mut plan, &mut scratch);
        let fresh = spec.plan_for(run_seed, servers, horizon);
        prop_assert_eq!(&plan, &fresh);
    }

    /// A trivial plan is invisible: same schedule, bit-identical cost, and
    /// zero fault-handling activity.
    #[test]
    fn trivial_plan_is_bit_identical_to_bare_sc(inst in random_instance()) {
        let bare = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let mut wrapped = FaultTolerant::new(SpeculativeCaching::paper(), FaultPlan::none());
        let run = run_policy(&mut wrapped, &inst);
        prop_assert_eq!(run.total_cost.to_bits(), bare.total_cost.to_bits());
        prop_assert_eq!(&run.schedule, &bare.schedule);
        let stats = wrapped.stats();
        prop_assert_eq!(stats.copies_lost, 0);
        prop_assert_eq!(stats.retries, 0);
        prop_assert_eq!(stats.deferred, 0);
        prop_assert_eq!(stats.retry_cost.to_bits(), 0.0f64.to_bits());
    }

    /// The faulty cell runner under `FaultSpec::none()` collapses to the
    /// fault-free runner, bit for bit.
    #[test]
    fn faultless_cells_match_fault_free_cells(
        servers in 2usize..=6,
        requests in 1usize..=40,
        seed in 0u64..512,
    ) {
        let workload = PoissonWorkload::uniform(
            CommonParams { servers, requests, mu: 1.0, lambda: 1.0 },
            1.0,
        );
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let plain = RunRequest::new(RunMode::Plain).run_cell(&sc, &workload, seed..seed + 1);
        let faultless = RunRequest::new(RunMode::from_faults(Some(FaultSpec::none())))
            .run_cell(&sc, &workload, seed..seed + 1);
        prop_assert_eq!(plain.len(), 1);
        prop_assert_eq!(faultless.len(), 1);
        let (p, f) = (&plain[0], &faultless[0]);
        prop_assert_eq!(p.online_cost.to_bits(), f.online_cost.to_bits());
        prop_assert_eq!(p.opt_cost.to_bits(), f.opt_cost.to_bits());
        prop_assert_eq!(p.transfers, f.transfers);
        prop_assert_eq!(p.audit_findings, 0);
        prop_assert_eq!(f.audit_findings, 0);
    }

    /// Observability never feeds back: attaching a live [`Registry`] to
    /// the run pipeline leaves every [`SeedResult`] bit-identical to the
    /// metrics-off run — plain, faulty and oblivious modes alike.
    ///
    /// [`SeedResult`]: mcc_simnet::SeedResult
    #[test]
    fn live_metrics_never_perturb_results(
        servers in 2usize..=6,
        requests in 1usize..=40,
        seed in 0u64..256,
        spec in random_spec(),
        tolerant_bit in 0u8..2,
    ) {
        let tolerant = tolerant_bit == 1;
        let workload = PoissonWorkload::uniform(
            CommonParams { servers, requests, mu: 1.0, lambda: 1.0 },
            1.0,
        );
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let spec = FaultSpec { tolerant, ..spec };
        for mode in [RunMode::Plain, RunMode::from_faults(Some(spec))] {
            let quiet = RunRequest::new(mode).run_cell(&sc, &workload, seed..seed + 2);
            let reg = Registry::new();
            let observed = RunRequest::new(mode)
                .with_sink(&reg)
                .run_cell(&sc, &workload, seed..seed + 2);
            prop_assert_eq!(quiet.len(), observed.len());
            for (q, o) in quiet.iter().zip(&observed) {
                prop_assert_eq!(q.seed, o.seed);
                prop_assert_eq!(q.online_cost.to_bits(), o.online_cost.to_bits());
                prop_assert_eq!(q.opt_cost.to_bits(), o.opt_cost.to_bits());
                prop_assert_eq!(q.ratio.to_bits(), o.ratio.to_bits());
                prop_assert_eq!(q.transfers, o.transfers);
                prop_assert_eq!(q.audit_findings, o.audit_findings);
                match (&q.fault, &o.fault) {
                    (None, None) => {}
                    (Some(qf), Some(of)) => {
                        prop_assert_eq!(qf.stats.retries, of.stats.retries);
                        prop_assert_eq!(qf.stats.copies_lost, of.stats.copies_lost);
                        prop_assert_eq!(qf.stats.deferred, of.stats.deferred);
                        prop_assert_eq!(
                            qf.stats.retry_cost.to_bits(),
                            of.stats.retry_cost.to_bits()
                        );
                    }
                    _ => prop_assert!(false, "fault outcome presence diverged"),
                }
            }
        }
    }
}

/// Satellite regression: a single-server cluster used to be un-runnable
/// under faults (the old `m − 1` availability cap clamped every crash
/// away). Now a crash on the only server is a total outage — requests
/// inside it defer into the offline queue and replay at recovery, the
/// run survives, and the audit comes back clean.
#[test]
fn single_server_cluster_survives_crashes_via_offline_queue() {
    let inst = Instance::new(
        1,
        CostModel::new(1.0, 1.0).unwrap(),
        (1..=8)
            .map(|k| Request::new(ServerId(0), k as f64))
            .collect(),
    )
    .unwrap();
    let spec = FaultSpec {
        seed: 11,
        crash_rate: 0.5,
        mean_downtime: 2.0,
        fail_prob: 0.0,
        mean_delay: 0.0,
        ..FaultSpec::default()
    };
    // Find a run seed whose plan actually crashes the lone server over a
    // request, so degraded mode is exercised (deterministic: the scan
    // order is fixed).
    let (plan, _) = (0u64..256)
        .map(|s| spec.plan_for(s, inst.servers(), inst.horizon()))
        .filter(|p| !p.crashes().is_empty())
        .map(|p| {
            let deferrals = inst
                .requests()
                .iter()
                .filter(|r| p.is_down(ServerId(0), r.time))
                .count();
            (p, deferrals)
        })
        .max_by_key(|&(_, d)| d)
        .expect("some seed in 0..256 must produce a crash window");
    let (fstats, stats, report) = run_wrapped_and_audit(&inst, &plan);
    assert!(
        fstats.deferred > 0,
        "the chosen plan must push requests through the offline queue"
    );
    assert_eq!(fstats.deferred, fstats.replayed + fstats.dropped);
    assert_eq!(fstats.deferred, stats.deferred);
    assert!(report.is_clean(), "m = 1 run must audit clean: {report:?}");
}
