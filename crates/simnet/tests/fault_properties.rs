//! Property tests for the fault-injection layer.
//!
//! For random request sequences and random fault regimes:
//! * the fault-tolerant wrapper keeps Speculative Caching auditor-clean
//!   under *any* seed-derived fault plan (the survival guarantee);
//! * a trivial fault plan is a strict no-op — the wrapped run is
//!   bit-identical to the bare policy's, schedule and cost alike, and the
//!   faulty cell runner collapses to the fault-free one.

use mcc_core::online::{run_policy, FaultPlan, FaultTolerant, SpeculativeCaching};
use mcc_model::{CostModel, Instance, Request, ServerId};
use mcc_obs::Registry;
use mcc_simnet::{factory, FaultSpec, RunMode, RunRequest, ScheduleAuditor};
use mcc_workloads::{CommonParams, PoissonWorkload};
use proptest::prelude::*;

fn random_instance() -> impl Strategy<Value = Instance<f64>> {
    (2usize..=6, 1usize..=50).prop_flat_map(|(m, n)| {
        let servers = proptest::collection::vec(0..m, n);
        let gaps = proptest::collection::vec(0.01f64..4.0, n);
        let mu = 0.2f64..3.0;
        let lambda = 0.2f64..3.0;
        (Just(m), servers, gaps, mu, lambda).prop_map(|(m, servers, gaps, mu, lambda)| {
            let mut t = 0.0;
            let requests: Vec<Request<f64>> = servers
                .into_iter()
                .zip(gaps)
                .map(|(s, gap)| {
                    t += gap;
                    Request::new(ServerId::from_index(s), t)
                })
                .collect();
            Instance::new(m, CostModel::new(mu, lambda).unwrap(), requests).unwrap()
        })
    })
}

fn random_spec() -> impl Strategy<Value = FaultSpec> {
    (
        0u64..u64::MAX,
        0.0f64..1.0,
        0.05f64..3.0,
        0.0f64..0.3,
        1u32..8,
        0.0f64..0.5,
    )
        .prop_map(
            |(seed, crash_rate, mean_downtime, fail_prob, max_failed_attempts, mean_delay)| {
                FaultSpec {
                    seed,
                    crash_rate,
                    mean_downtime,
                    fail_prob,
                    max_failed_attempts,
                    mean_delay,
                    tolerant: true,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The survival guarantee: wrapped SC audits clean against every plan
    /// the generator can produce, crashes and transfer failures included.
    #[test]
    fn wrapped_sc_audits_clean_under_any_fault_plan(
        inst in random_instance(),
        spec in random_spec(),
        run_seed in 0u64..64,
    ) {
        let plan = spec.plan_for(run_seed, inst.servers(), inst.horizon());
        let mut wrapped = FaultTolerant::new(SpeculativeCaching::paper(), plan.clone());
        let run = run_policy(&mut wrapped, &inst);
        let report = ScheduleAuditor::default().audit_run(&inst, &run, Some(&plan));
        prop_assert!(
            report.is_clean(),
            "wrapped SC tripped the auditor ({} findings) on {} under plan with {} crashes",
            report.len(),
            inst.to_compact(),
            plan.crashes().len()
        );
        prop_assert!(run.total_cost.is_finite());
    }

    /// A trivial plan is invisible: same schedule, bit-identical cost, and
    /// zero fault-handling activity.
    #[test]
    fn trivial_plan_is_bit_identical_to_bare_sc(inst in random_instance()) {
        let bare = run_policy(&mut SpeculativeCaching::paper(), &inst);
        let mut wrapped = FaultTolerant::new(SpeculativeCaching::paper(), FaultPlan::none());
        let run = run_policy(&mut wrapped, &inst);
        prop_assert_eq!(run.total_cost.to_bits(), bare.total_cost.to_bits());
        prop_assert_eq!(&run.schedule, &bare.schedule);
        let stats = wrapped.stats();
        prop_assert_eq!(stats.copies_lost, 0);
        prop_assert_eq!(stats.retries, 0);
        prop_assert_eq!(stats.retry_cost.to_bits(), 0.0f64.to_bits());
    }

    /// The faulty cell runner under `FaultSpec::none()` collapses to the
    /// fault-free runner, bit for bit.
    #[test]
    fn faultless_cells_match_fault_free_cells(
        servers in 2usize..=6,
        requests in 1usize..=40,
        seed in 0u64..512,
    ) {
        let workload = PoissonWorkload::uniform(
            CommonParams { servers, requests, mu: 1.0, lambda: 1.0 },
            1.0,
        );
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let plain = RunRequest::new(RunMode::Plain).run_cell(&sc, &workload, seed..seed + 1);
        let faultless = RunRequest::new(RunMode::from_faults(Some(FaultSpec::none())))
            .run_cell(&sc, &workload, seed..seed + 1);
        prop_assert_eq!(plain.len(), 1);
        prop_assert_eq!(faultless.len(), 1);
        let (p, f) = (&plain[0], &faultless[0]);
        prop_assert_eq!(p.online_cost.to_bits(), f.online_cost.to_bits());
        prop_assert_eq!(p.opt_cost.to_bits(), f.opt_cost.to_bits());
        prop_assert_eq!(p.transfers, f.transfers);
        prop_assert_eq!(p.audit_findings, 0);
        prop_assert_eq!(f.audit_findings, 0);
    }

    /// Observability never feeds back: attaching a live [`Registry`] to
    /// the run pipeline leaves every [`SeedResult`] bit-identical to the
    /// metrics-off run — plain, faulty and oblivious modes alike.
    ///
    /// [`SeedResult`]: mcc_simnet::SeedResult
    #[test]
    fn live_metrics_never_perturb_results(
        servers in 2usize..=6,
        requests in 1usize..=40,
        seed in 0u64..256,
        spec in random_spec(),
        tolerant_bit in 0u8..2,
    ) {
        let tolerant = tolerant_bit == 1;
        let workload = PoissonWorkload::uniform(
            CommonParams { servers, requests, mu: 1.0, lambda: 1.0 },
            1.0,
        );
        let sc = factory(SpeculativeCaching::<f64>::paper());
        let spec = FaultSpec { tolerant, ..spec };
        for mode in [RunMode::Plain, RunMode::from_faults(Some(spec))] {
            let quiet = RunRequest::new(mode).run_cell(&sc, &workload, seed..seed + 2);
            let reg = Registry::new();
            let observed = RunRequest::new(mode)
                .with_sink(&reg)
                .run_cell(&sc, &workload, seed..seed + 2);
            prop_assert_eq!(quiet.len(), observed.len());
            for (q, o) in quiet.iter().zip(&observed) {
                prop_assert_eq!(q.seed, o.seed);
                prop_assert_eq!(q.online_cost.to_bits(), o.online_cost.to_bits());
                prop_assert_eq!(q.opt_cost.to_bits(), o.opt_cost.to_bits());
                prop_assert_eq!(q.ratio.to_bits(), o.ratio.to_bits());
                prop_assert_eq!(q.transfers, o.transfers);
                prop_assert_eq!(q.audit_findings, o.audit_findings);
                match (&q.fault, &o.fault) {
                    (None, None) => {}
                    (Some(qf), Some(of)) => {
                        prop_assert_eq!(qf.stats.retries, of.stats.retries);
                        prop_assert_eq!(qf.stats.copies_lost, of.stats.copies_lost);
                        prop_assert_eq!(
                            qf.stats.retry_cost.to_bits(),
                            of.stats.retry_cost.to_bits()
                        );
                    }
                    _ => prop_assert!(false, "fault outcome presence diverged"),
                }
            }
        }
    }
}
