//! An online data service: requests stream in live (nothing is known in
//! advance), a policy decides per request, and we audit the accumulated
//! schedule afterwards — including against baselines and the hindsight
//! optimum. Runs on the `mcc-simnet` discrete-event engine.
//!
//! ```sh
//! cargo run --example online_service
//! ```

use mobile_cloud_cache::analysis::{fnum, Table};
use mobile_cloud_cache::prelude::*;
use mobile_cloud_cache::simnet::{simulate, Breakdown, CopyTimeline, Replay, SimConfig};
use mobile_cloud_cache::workloads::BurstyWorkload;

fn main() {
    // Bursty sessions over 8 edge servers: users fire clusters of requests
    // from one location, then reappear elsewhere.
    let common = CommonParams {
        servers: 8,
        requests: 500,
        mu: 1.0,
        lambda: 2.0,
    };
    let workload = BurstyWorkload::new(common, 6.0, 0.1, 4.0);
    let trace = workload.generate(2024);
    let config = SimConfig {
        servers: common.servers,
        cost: *trace.cost(),
        max_requests: usize::MAX,
    };

    let mut table = Table::new(
        "Online service audit (bursty sessions, λ/μ = 2)",
        &[
            "policy",
            "cost",
            "vs OPT",
            "transfers",
            "peak copies",
            "tail cost",
        ],
    );

    let opt = optimal_cost(&trace);
    let policies: Vec<Box<dyn OnlinePolicy<f64>>> = vec![
        Box::new(SpeculativeCaching::paper()),
        Box::new(Follow::new()),
        Box::new(StayAtOrigin::new()),
        Box::new(KeepEverywhere::new()),
    ];
    for mut policy in policies {
        let sim = simulate(policy.as_mut(), &mut Replay::new(&trace), config)
            .expect("generated traces are well-formed");
        let breakdown = Breakdown::from_record(&sim.record, trace.cost());
        let timeline = CopyTimeline::from_record(&sim.record);
        table.row(&[
            policy.name(),
            fnum(sim.total_cost),
            format!("{}x", fnum(sim.total_cost / opt)),
            sim.record.transfers.len().to_string(),
            timeline.peak().to_string(),
            fnum(breakdown.speculative_tails),
        ]);
    }
    table.row(&[
        "OPT (hindsight)".into(),
        fnum(opt),
        "1x".into(),
        "—".into(),
        "—".into(),
        "0".into(),
    ]);

    println!("{}", table.to_markdown());
    println!(
        "Speculative caching keeps a copy alive Δt = λ/μ = {} after each \
         use: long enough to absorb a session burst, short enough not to \
         pay for idle replicas.",
        fnum(trace.cost().delta_t())
    );
}
