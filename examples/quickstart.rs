//! Quickstart: solve one instance off-line and online, and inspect the
//! optimal schedule.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mobile_cloud_cache::analysis::{fnum, render};
use mobile_cloud_cache::prelude::*;

fn main() {
    // A 4-server cloud with unit costs and the paper's Fig. 6 requests.
    // `sJ@T` means "server J requests the item at time T" (the item starts
    // on s1 at time 0).
    let inst = Instance::<f64>::from_compact(
        "m=4 mu=1 lambda=1 | s2@0.5 s3@0.8 s4@1.1 s1@1.4 s2@2.6 s2@3.2 s3@4.0",
    )
    .expect("valid instance");

    println!("instance: {}\n", inst.to_compact());

    // --- Off-line: the O(mn) optimal dynamic program -------------------
    let (schedule, opt) = optimal_schedule(&inst);
    let checked = validate(&inst, &schedule).expect("optimal schedule is feasible");
    println!(
        "off-line optimum: {} (caching {}, transfers {})",
        fnum(opt),
        fnum(checked.caching),
        fnum(checked.transfer)
    );
    println!("{}", render(&inst, &schedule));

    // --- Online: Speculative Caching ------------------------------------
    let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
    println!(
        "online (speculative caching): {} — {} transfers, {} cache hits, ratio {}",
        fnum(run.total_cost),
        run.transfers(),
        run.cache_hits(),
        fnum(run.total_cost / opt),
    );
    println!("{}", render(&inst, &run.schedule));

    // The theorem chain for this very run:
    let report = analyze(&inst, &run);
    report.check_chain(1e-9).expect("Theorem 3 chain holds");
    println!(
        "Theorem 3 chain verified: Π(SC) = {} ≤ 3·Π(OPT) + λ = {}",
        fnum(report.sc_cost),
        fnum(3.0 * report.opt_cost + 1.0),
    );
}
