//! The paper's deployment story, end to end: mine a user's trajectory
//! from yesterday's trace, predict today's, plan the optimal schedule on
//! the prediction, and execute it against what actually happens —
//! compared with running blind (online speculative caching) and with
//! hindsight (the true optimum).
//!
//! ```sh
//! cargo run --example predict_and_plan [rho]
//! ```

use mobile_cloud_cache::analysis::{fnum, Table};
use mobile_cloud_cache::prelude::*;
use mobile_cloud_cache::simnet::plan_and_execute;
use mobile_cloud_cache::workloads::MarkovPredictor;

fn main() {
    let rho: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.93);
    let common = CommonParams {
        servers: 10,
        requests: 800,
        mu: 1.0,
        lambda: 1.0,
    };
    let user = MarkovWorkload::new(common, 1.0, rho);

    println!(
        "mobile user over {} edge servers, predictability rho = {rho}\n",
        common.servers
    );

    let mut table = Table::new(
        "Plan on prediction vs. running blind (5 days)",
        &[
            "day",
            "predictor accuracy",
            "planned cost",
            "online SC",
            "hindsight OPT",
        ],
    );
    let (mut planned_sum, mut online_sum, mut opt_sum) = (0.0, 0.0, 0.0);
    for day in 0..5u64 {
        let yesterday = user.generate(2 * day);
        let today = user.generate(2 * day + 1);

        // Mine the trajectory model from yesterday's service log.
        let predictor = MarkovPredictor::fit(&yesterday);
        let accuracy = predictor.accuracy_on(&today);

        // Predict today (actual times, ML locations) and plan optimally.
        let mut prev: Option<usize> = None;
        let predicted_requests: Vec<Request<f64>> = today
            .requests()
            .iter()
            .map(|r| {
                let s = match prev {
                    None => r.server.index(),
                    Some(p) => predictor.predict_next(p),
                };
                prev = Some(s);
                Request::at(s, r.time)
            })
            .collect();
        let predicted = Instance::new(today.servers(), *today.cost(), predicted_requests).unwrap();
        let outcome = plan_and_execute(&predicted, &today);

        let online = run_policy(&mut SpeculativeCaching::paper(), &today).total_cost;
        let opt = optimal_cost(&today);
        planned_sum += outcome.total();
        online_sum += online;
        opt_sum += opt;
        table.row(&[
            day.to_string(),
            fnum(accuracy),
            fnum(outcome.total()),
            fnum(online),
            fnum(opt),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "over 5 days: planning on mined trajectories cost {} vs {} running \
         blind — {}% of the theoretical (hindsight) saving captured.",
        fnum(planned_sum),
        fnum(online_sum),
        fnum(100.0 * (online_sum - planned_sum) / (online_sum - opt_sum).max(1e-9)),
    );
    println!("try `cargo run --example predict_and_plan 0.3` for an erratic user.");
}
