//! A mobile user roams between edge servers along a predictable
//! trajectory; the provider mines the trajectory (the paper's "93 % of
//! human mobility is predictable" motivation) and schedules the shared
//! item off-line, then we compare against serving the same user online.
//!
//! ```sh
//! cargo run --example mobile_trajectory [rho]
//! ```

use mobile_cloud_cache::analysis::{fnum, Summary};
use mobile_cloud_cache::prelude::*;

fn main() {
    let rho: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.93);

    let common = CommonParams {
        servers: 12,
        requests: 1_000,
        mu: 1.0,
        lambda: 1.0,
    };
    let workload = MarkovWorkload::new(common, 1.0, rho);
    println!(
        "mobile user over {} edge servers, {} requests, predictability rho = {rho}\n",
        common.servers, common.requests
    );

    let mut offline_cost = Summary::new();
    let mut online_cost = Summary::new();
    let mut hits = Summary::new();
    for seed in 0..20 {
        let inst = workload.generate(seed);
        let opt = optimal_cost(&inst);
        let run = run_policy(&mut SpeculativeCaching::paper(), &inst);
        offline_cost.push(opt);
        online_cost.push(run.total_cost);
        hits.push(run.cache_hits() as f64 / inst.n() as f64);
    }

    println!(
        "off-line (trajectory known):  cost {}",
        offline_cost.display(1)
    );
    println!(
        "online (speculative caching): cost {}",
        online_cost.display(1)
    );
    println!(
        "online hit rate {}; knowing the trajectory saves {}% on average",
        fnum(hits.mean()),
        fnum(100.0 * (1.0 - offline_cost.mean() / online_cost.mean())),
    );
    println!(
        "\ntry `cargo run --example mobile_trajectory 0.2` — with an \
         unpredictable user the off-line advantage shrinks toward the \
         competitive bound."
    );
}
