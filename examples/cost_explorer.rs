//! Interactive-ish cost exploration: how does the λ/μ price ratio reshape
//! the optimal schedule for one fixed trajectory? Sweeps λ and reports
//! how the optimum shifts between migration (transfers) and replication
//! (parallel caching).
//!
//! ```sh
//! cargo run --example cost_explorer
//! ```

use mobile_cloud_cache::analysis::{fnum, Table};
use mobile_cloud_cache::model::CostModel;
use mobile_cloud_cache::prelude::*;
use mobile_cloud_cache::workloads::ZipfWorkload;

fn main() {
    // One fixed trajectory: Zipf-popular accesses across 6 servers.
    let base = CommonParams {
        servers: 6,
        requests: 300,
        mu: 1.0,
        lambda: 1.0,
    };
    let trace = ZipfWorkload::new(base, 1.0, 1.1).generate(7);

    let mut table = Table::new(
        "Optimal schedule structure vs. transfer price λ (μ = 1)",
        &[
            "λ",
            "Δt=λ/μ",
            "OPT cost",
            "caching",
            "transfers",
            "#transfers",
            "max copies",
        ],
    );

    for lambda in [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0] {
        // Re-price the same trajectory.
        let inst = Instance::new(
            trace.servers(),
            CostModel::new(1.0, lambda).unwrap(),
            trace.requests().to_vec(),
        )
        .unwrap();
        let (sched, cost) = optimal_schedule(&inst);
        let caching = sched.caching_cost(inst.cost());
        let transfers = sched.transfer_cost(inst.cost());
        // Probe replication level at request instants.
        let max_copies = (1..=inst.n())
            .map(|i| sched.copies_at(inst.t(i)))
            .max()
            .unwrap_or(1);
        table.row(&[
            fnum(lambda),
            fnum(lambda),
            fnum(cost),
            fnum(caching),
            fnum(transfers),
            sched.transfers.len().to_string(),
            max_copies.to_string(),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "Cheap transfers → migrate a single copy on demand; expensive \
         transfers → replicate once and cache everywhere. The optimum \
         crosses over where caching a server interval matches one \
         transfer (σ = Δt)."
    );
}
