//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API its workload generators and
//! tests rely on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen_range`/`gen`/`gen_bool`, and
//! [`seq::SliceRandom`] shuffling. The trait shapes mirror `rand 0.8` so
//! call sites compile unchanged against either implementation.
//!
//! **Stream compatibility caveat:** `StdRng` here is xoshiro256++ seeded
//! through SplitMix64, not the ChaCha12 core of upstream `rand`. Seeded
//! runs are deterministic and portable *within this workspace*, but do not
//! reproduce the bit-streams of the real `rand` crate. Nothing in the repo
//! asserts on absolute stream values, only on per-seed determinism and
//! statistical properties.

/// A low-level source of 64-bit randomness (mirrors `rand_core::RngCore`'s
/// role; only the 64-bit path is needed here).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`]
/// (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform sample of the whole domain (`f64` in `[0, 1)`, integers
    /// over their full range, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` bits → uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain (the role of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform-range sampler (the role of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges that can produce a uniform sample (the role of
/// `rand::distributions::uniform::SampleRange`).
///
/// The two impls are blanket impls over [`SampleUniform`] — exactly one per
/// range shape — so type inference can flow outward from the call site
/// through the range's element type, the same way it does with real `rand`
/// (e.g. `let x: i64 = rng.gen_range(1..=50);` makes the literals `i64`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift uniform map; bias is < 2^-64 per draw,
                // far below anything the statistical tests resolve.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let x = lo + (hi - lo) * unit_f64(rng.next_u64());
        // Guard the open upper bound against rounding.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++ with
    /// SplitMix64 seed expansion. Fast, 256-bit state, passes BigCrush —
    /// more than adequate for workload synthesis and property tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers (mirrors `rand::seq`).

    use super::Rng;

    /// Random slice operations, implemented for `[T]`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 miss: {hits}");
    }
}
