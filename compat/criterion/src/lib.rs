//! Offline stand-in for the subset of `criterion 0.5` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the measurement surface its three benches rely on:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`]
//! with `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! [`Criterion::bench_function`], [`BenchmarkId`], [`Throughput`], and
//! [`black_box`].
//!
//! **Measurement caveat:** this harness is a thin wall-clock timer, not
//! criterion's bootstrapped statistics engine. Each benchmark is warmed up
//! briefly, then timed for `sample_size` samples whose iteration counts are
//! sized to ~25 ms of work each; the reported figure is the per-iteration
//! median with min/max spread. There are no HTML reports, baselines, or
//! outlier classification — the repo's machine-readable perf trajectory
//! lives in `BENCH_solver.json`, produced by `mcc-bench`'s own harness.
//! Command-line flags criterion would parse (`--bench`, filters) are
//! accepted and ignored except for a positional substring filter.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-of-work annotation for a benchmark (mirrors
/// `criterion::Throughput`; only the element form is needed here).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier (mirrors
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{function}/{parameter}"`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut name = function.into();
        let _ = write!(name, "/{parameter}");
        BenchmarkId { name }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Per-iteration timer handed to benchmark closures (mirrors
/// `criterion::Bencher`).
pub struct Bencher<'a> {
    /// Samples collected so far (total duration, iterations), appended by
    /// [`Bencher::iter`].
    samples: &'a mut Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, first calibrating an iteration count worth ~25 ms,
    /// then collecting `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: grow the batch until it costs >= 5 ms.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) {
                break dt.as_secs_f64() / batch as f64;
            }
            batch = batch.saturating_mul(4).max(2);
        };
        let target = Duration::from_millis(25).as_secs_f64();
        let iters = ((target / per_iter.max(1e-12)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), iters));
        }
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut samples: Vec<(Duration, u64)> = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{id:<55} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let med = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    let extra = match throughput {
        Some(Throughput::Elements(e)) if med > 0.0 => {
            format!("  {:>12.0} elem/s", e as f64 * 1e9 / med)
        }
        Some(Throughput::Bytes(n)) if med > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / med)
        }
        _ => String::new(),
    };
    println!(
        "{id:<55} [{} .. {} .. {}]{extra}",
        human_ns(lo),
        human_ns(med),
        human_ns(hi)
    );
}

/// A named group of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a units-of-work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn header(&mut self) {
        if !self.header_printed {
            println!("\n== {} ==", self.name);
            self.header_printed = true;
        }
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.header();
        let full = format!("{}/{}", self.name, id.name);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under `id` with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.header();
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group (kept for API parity; output is already flushed).
    pub fn finish(&mut self) {}
}

/// The benchmark manager (mirrors `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept and ignore harness flags; a bare positional argument acts
        // as a substring filter like criterion's.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Applies harness configuration from the command line (parity shim —
    /// `Default` already did).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            header_printed: false,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&id.into(), self.filter.as_deref(), 20, None, &mut f);
        self
    }

    /// Runs registered group functions (used by [`criterion_main!`]).
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group: a named fn that runs each listed benchmark
/// function against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("compat");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
        c.bench_function("compat/free", |b| b.iter(|| black_box(1u64 + 1)));
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fast", 4000).name, "fast/4000");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
