//! Offline stand-in for the subset of `proptest 1.x` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its property tests rely on:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`);
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//!   strategies, [`Just`], [`prop_oneof!`] and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] and [`TestCaseError`] with the
//!   `?`-operator flow of real proptest test bodies.
//!
//! **Semantics caveat:** there is **no shrinking** — a failing case reports
//! its deterministic case number (re-run the test to reproduce; every case
//! is seeded from the test's module path and case index) but is not
//! minimized. Generation is purely random per case, like proptest with
//! `max_shrink_iters = 0`. This keeps the harness a few hundred lines while
//! preserving what the repo's tests actually assert.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Deterministic per-case RNG handed to strategies.
///
/// Seeded from a FNV-1a hash of the test's identifier and the case index,
/// so every test/case pair replays identically across runs and platforms.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `id`.
    pub fn for_case(id: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    #[inline]
    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Why a test case failed (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure or explicit `fail`.
    Fail(String),
    /// Case rejected (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// An explicit failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An explicit rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, builds a dependent strategy from
    /// it, and samples that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-typed strategies (what [`prop_oneof!`]
/// builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from the (non-empty) arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.rng().gen_range(0..self.arms.len());
        self.arms[k].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::{Strategy, TestRng};

    /// A `Vec` of exactly `size` elements drawn from `element`.
    ///
    /// Real proptest accepts a size *range* here; the workspace only ever
    /// passes a fixed length, so that is all this stand-in models.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fallible assertion: evaluates to `return Err(TestCaseError)` on failure
/// so the enclosing proptest body reports instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// The proptest test harness macro. Mirrors `proptest::proptest!` for the
/// syntax this workspace uses: an optional `#![proptest_config(...)]`
/// header followed by `#[test]` functions whose arguments are drawn from
/// strategies with `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal item muncher for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(id, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => panic!(
                        "proptest {id}: case {case}/{} failed (no shrinking in the \
                         offline stand-in; the case is deterministic per index): {e}",
                        config.cases
                    ),
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface (mirrors `proptest::prelude`).

    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn counting() -> impl Strategy<Value = usize> {
        (1usize..=4).prop_flat_map(|n| crate::collection::vec(0usize..10, n).prop_map(|v| v.len()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f), "f = {f}");
        }

        #[test]
        fn flat_map_controls_length(len in counting()) {
            prop_assert!((1..=4).contains(&len));
        }

        #[test]
        fn oneof_picks_only_arms(v in prop_oneof![Just(1), Just(2), Just(5)]) {
            prop_assert!(v == 1 || v == 2 || v == 5);
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0usize..5, 10usize..15)) {
            prop_assert!(a < 5 && (10..15).contains(&b));
            prop_assert_eq!(a + b - b, a);
        }
    }

    #[test]
    fn cases_are_deterministic_per_index() {
        let s = (0usize..1000, 0usize..1000);
        let a: Vec<_> = (0..8)
            .map(|c| s.generate(&mut crate::TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..8)
            .map(|c| s.generate(&mut crate::TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases must vary");
    }

    #[test]
    fn question_mark_flow_compiles() {
        // No `#[test]` on the inner fn: it is nested inside this test and
        // called directly ("cannot test inner items" otherwise).
        proptest! {
            fn inner(x in 0usize..10) {
                let r: Result<usize, TestCaseError> = Ok(x);
                let y = r.map_err(|e| TestCaseError::fail(format!("{e}")))?;
                prop_assert_eq!(x, y, "roundtrip {}", x);
            }
        }
        inner();
    }
}
